//! RPC client: pipelined unary calls multiplexed on one connection.
//!
//! Historically this client was *lock-step*: one connection mutex was held
//! across the whole send→recv exchange, so at most one request was in
//! flight and concurrent callers serialized even when the server was
//! healthy (K concurrent calls cost `K·RTT`). The client is now
//! *pipelined*: requests carry a correlation id (the envelope's
//! `call_id`), a dedicated reader thread completes responses out of order
//! by matching ids against a pending-call map, and up to an in-flight
//! window of requests share the connection concurrently — K concurrent
//! calls cost `≈ RTT + K·t_serve`.
//!
//! [`RpcClient::call_async`] sends a request and returns a
//! [`PendingCall`] ticket; [`RpcClient::call`] is send + wait-for-my-id.
//! A client can carry a [`SharedLink`] + [`Clock`]: each call then charges
//! one modeled network round-trip, overlapping with other in-flight calls
//! on the virtual clock — this is where the milliseconds and the jitter
//! of the paper's Fig. 6 remote path come from, since the in-process
//! exchange itself is nearly free.
//!
//! ## Deadlines, poisoning, and reconnection
//!
//! [`RpcClient::call_with_deadline`] bounds how long a call waits for its
//! response; an expired deadline surfaces as [`RpcError::Deadline`]. With
//! correlation ids a deadline expiry no longer poisons the connection:
//! the expired call abandons its pending slot and the reader discards the
//! late response by its unmatched id, while neighboring in-flight calls
//! proceed undisturbed. Only *transport or protocol* failures poison the
//! connection — the reader fails every in-flight call with the same
//! error and drops the stream. If the client was built with a connector
//! ([`RpcClient::with_connector`]) the next call transparently redials;
//! otherwise subsequent calls fail with `Transport(NotConnected)` until
//! the client is replaced. This mirrors gRPC channel behavior: a channel
//! outlives any one TCP connection.

use crate::envelope::{Request, Response, FRAME_RESPONSE};
use crate::service::{Status, StatusCode};
use bytes::Bytes;
use ipc::Conn;
use netsim::SharedLink;
use obs::{Counter, Histogram, Registry};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tfsim::Clock;

/// How often the reader thread wakes from `recv` to check its stop flag,
/// so poisoned/replaced connections release their thread promptly.
const READER_POLL: Duration = Duration::from_millis(25);

/// Ceiling for the idle-poll backoff in `reader_loop`: the longest an
/// idle reader thread sleeps between stop-flag checks.
const IDLE_POLL_CAP: Duration = Duration::from_millis(500);

/// Default cap on requests in flight per connection (gRPC's HTTP/2
/// default stream window is 100; we default slightly under).
const DEFAULT_WINDOW: usize = 64;

/// Errors surfaced by RPC calls.
#[derive(Debug)]
pub enum RpcError {
    /// The service returned an error status.
    Status(Status),
    /// The transport failed (peer gone, protocol violation, ...).
    Transport(std::io::Error),
    /// No response arrived within the caller's deadline.
    Deadline(Duration),
    /// The response could not be decoded.
    Protocol(String),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Status(s) => write!(f, "rpc status {s}"),
            RpcError::Transport(e) => write!(f, "rpc transport error: {e}"),
            RpcError::Deadline(d) => write!(f, "rpc deadline exceeded ({d:?})"),
            RpcError::Protocol(m) => write!(f, "rpc protocol error: {m}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl RpcError {
    /// The status, if this error is a service status.
    pub fn status(&self) -> Option<&Status> {
        match self {
            RpcError::Status(s) => Some(s),
            _ => None,
        }
    }

    /// Whether retrying the call against the same peer could plausibly
    /// succeed: transient transport faults, expired deadlines, and
    /// explicit `Unavailable` statuses. Definite answers (`NotFound`,
    /// `AlreadyExists`, ...) and protocol violations are not retryable.
    pub fn is_retryable(&self) -> bool {
        match self {
            RpcError::Transport(_) | RpcError::Deadline(_) => true,
            RpcError::Status(s) => s.code == StatusCode::Unavailable,
            RpcError::Protocol(_) => false,
        }
    }
}

/// Optional network cost injection: a delay model plus the clock to charge.
#[derive(Clone)]
pub struct NetCost {
    /// Delay model for one round trip, parameterized by payload size.
    pub link: SharedLink,
    /// The simulation clock the modeled delay is charged to.
    pub clock: Clock,
}

/// Dials a fresh connection when the current one is poisoned.
pub type Connector = Box<dyn Fn() -> io::Result<Box<dyn Conn>> + Send + Sync>;

/// Pre-registered metric handles for one client (one logical channel).
///
/// Per-verb wall-clock call latency plus failure-mode counters and an
/// in-flight pipeline-depth histogram. Handles are resolved once at
/// registration, so the record path touches atomics only — no registry
/// lookup, no lock.
pub struct ClientMetrics {
    /// Latency histograms indexed by method id (`None` for gaps).
    by_method: Vec<Option<Arc<Histogram>>>,
    /// Latency of calls whose method id was not pre-registered.
    other: Arc<Histogram>,
    /// Calls that failed with [`RpcError::Deadline`].
    deadline_expired: Arc<Counter>,
    /// Times a poisoned or absent connection was redialed.
    redials: Arc<Counter>,
    /// Times a transport/protocol failure poisoned (dropped) the connection.
    poisoned: Arc<Counter>,
    /// Pipeline depth (requests in flight, this one included) sampled at
    /// each send.
    in_flight: Arc<Histogram>,
}

impl ClientMetrics {
    /// Register this client's metrics under `prefix` (e.g.
    /// `rpc.client.store-1`). `verbs` maps method ids to verb names for
    /// per-verb latency histograms; unlisted methods land in
    /// `{prefix}.other.latency_ns`.
    pub fn register(
        registry: &Registry,
        prefix: &str,
        verbs: &[(u32, &str)],
    ) -> Arc<ClientMetrics> {
        let max_id = verbs.iter().map(|(id, _)| *id).max().unwrap_or(0) as usize;
        let mut by_method = vec![None; max_id + 1];
        for (id, name) in verbs {
            by_method[*id as usize] =
                Some(registry.histogram(&format!("{prefix}.{name}.latency_ns")));
        }
        Arc::new(ClientMetrics {
            by_method,
            other: registry.histogram(&format!("{prefix}.other.latency_ns")),
            deadline_expired: registry.counter(&format!("{prefix}.deadline_expired")),
            redials: registry.counter(&format!("{prefix}.redials")),
            poisoned: registry.counter(&format!("{prefix}.poisoned")),
            in_flight: registry.histogram(&format!("{prefix}.in_flight")),
        })
    }

    fn latency(&self, method: u32) -> &Arc<Histogram> {
        self.by_method
            .get(method as usize)
            .and_then(|h| h.as_ref())
            .unwrap_or(&self.other)
    }
}

/// Why a connection was poisoned; replayed to every in-flight call.
enum PoisonCause {
    Transport(io::ErrorKind, String),
    Protocol(String),
}

impl PoisonCause {
    fn to_error(&self) -> RpcError {
        match self {
            PoisonCause::Transport(kind, msg) => {
                RpcError::Transport(io::Error::new(*kind, msg.clone()))
            }
            PoisonCause::Protocol(msg) => RpcError::Protocol(msg.clone()),
        }
    }
}

/// One in-flight call's slot in the pending map.
enum PendingState {
    /// Sent, no response yet.
    Waiting,
    /// Completed by the reader (or failed by a poison event); awaiting
    /// pickup by the caller's `wait`.
    Done(Result<Response, RpcError>),
}

/// Connection state shared between callers and the reader thread.
struct ChannelState {
    /// Send half of the live connection; `None` when poisoned or not yet
    /// dialed.
    writer: Option<Box<dyn Conn>>,
    /// Bumped on every (re)dial and poison, so a stale reader thread can
    /// tell its connection has been replaced and must not touch state.
    generation: u64,
    /// Stop flag of the current reader thread (`None` before the first
    /// send on an eagerly-provided connection).
    reader_stop: Option<Arc<AtomicBool>>,
    /// In-flight and completed-but-unclaimed calls, keyed by call id.
    pending: HashMap<u64, PendingState>,
    /// Number of `Waiting` entries (the true in-flight depth).
    waiting: usize,
}

struct Shared {
    state: Mutex<ChannelState>,
    cond: Condvar,
    metrics: Mutex<Option<Arc<ClientMetrics>>>,
}

impl Shared {
    /// Poison generation `generation`: drop the writer, fail every
    /// in-flight call with `cause`, and bump the generation so stale
    /// readers stand down. No-op if the connection was already replaced.
    fn poison(&self, generation: u64, cause: PoisonCause) {
        let mut st = self.state.lock();
        if st.generation != generation {
            return;
        }
        st.generation += 1;
        st.writer = None;
        if let Some(stop) = st.reader_stop.take() {
            stop.store(true, Ordering::Release);
        }
        for slot in st.pending.values_mut() {
            if matches!(slot, PendingState::Waiting) {
                *slot = PendingState::Done(Err(cause.to_error()));
            }
        }
        st.waiting = 0;
        if let Some(m) = &*self.metrics.lock() {
            m.poisoned.inc();
        }
        self.cond.notify_all();
    }
}

/// The dedicated per-connection reader: demultiplexes responses to their
/// pending slots by call id, discards late responses whose call has been
/// abandoned, and poisons the connection on transport/protocol failure.
fn reader_loop(
    mut conn: Box<dyn Conn>,
    shared: Arc<Shared>,
    generation: u64,
    stop: Arc<AtomicBool>,
) {
    if conn.set_recv_timeout(Some(READER_POLL)).is_err() {
        shared.poison(
            generation,
            PoisonCause::Transport(io::ErrorKind::Other, "reader setup failed".to_string()),
        );
        return;
    }
    // The recv timeout only bounds how fast an *idle* reader notices its
    // stop flag — traffic wakes a parked recv immediately. Back the poll
    // off exponentially while idle so a large simulated fabric (64 nodes
    // ≈ 4k channels) doesn't burn the host CPU on idle wakeups, and snap
    // back to the floor whenever a frame actually arrives.
    let mut poll = READER_POLL;
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let frame = match conn.recv() {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                // Idle: re-check stop, then wait longer next round.
                let next = (poll * 2).min(IDLE_POLL_CAP);
                if next != poll && conn.set_recv_timeout(Some(next)).is_ok() {
                    poll = next;
                }
                continue;
            }
            Err(e) => {
                shared.poison(generation, PoisonCause::Transport(e.kind(), e.to_string()));
                return;
            }
        };
        if poll != READER_POLL && conn.set_recv_timeout(Some(READER_POLL)).is_ok() {
            poll = READER_POLL;
        }
        if frame.msg_type != FRAME_RESPONSE {
            shared.poison(
                generation,
                PoisonCause::Protocol(format!("unexpected frame type {:#x}", frame.msg_type)),
            );
            return;
        }
        let response = match Response::from_frame(&frame) {
            Ok(r) => r,
            Err(e) => {
                shared.poison(
                    generation,
                    PoisonCause::Protocol(format!("bad response: {e}")),
                );
                return;
            }
        };
        let mut st = shared.state.lock();
        if st.generation != generation {
            return; // connection replaced under us; late frame is stale
        }
        if let std::collections::hash_map::Entry::Occupied(mut slot) =
            st.pending.entry(response.call_id)
        {
            let was_waiting = matches!(slot.get(), PendingState::Waiting);
            slot.insert(PendingState::Done(Ok(response)));
            if was_waiting {
                st.waiting -= 1;
            }
            shared.cond.notify_all();
        }
        // No slot: the call abandoned its deadline and this response is
        // late. Dropping it by unmatched id is exactly why correlation
        // ids let deadlines expire without poisoning the connection.
    }
}

/// A pipelined unary RPC client.
///
/// Cheap to share across threads (`&self` methods); concurrent callers'
/// requests interleave on one connection up to the in-flight window. A
/// `None` writer means the previous connection was poisoned by a
/// transport/protocol failure (or never established); the next call
/// redials via the connector if one was provided.
pub struct RpcClient {
    shared: Arc<Shared>,
    connector: Option<Connector>,
    net: Option<NetCost>,
    metrics: Option<Arc<ClientMetrics>>,
    window: usize,
    next_id: AtomicU64,
    calls: AtomicU64,
    reconnects: AtomicU64,
}

impl RpcClient {
    /// Wrap an established connection, with no modeled network cost.
    pub fn new(conn: Box<dyn Conn>) -> Self {
        Self::with_net(conn, None)
    }

    /// Wrap a connection, charging `net` per call if given.
    pub fn with_net(conn: Box<dyn Conn>, net: Option<NetCost>) -> Self {
        RpcClient {
            shared: Arc::new(Shared {
                state: Mutex::new(ChannelState {
                    writer: Some(conn),
                    generation: 0,
                    reader_stop: None,
                    pending: HashMap::new(),
                    waiting: 0,
                }),
                cond: Condvar::new(),
                metrics: Mutex::new(None),
            }),
            connector: None,
            net,
            metrics: None,
            window: DEFAULT_WINDOW,
            next_id: AtomicU64::new(1),
            calls: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        }
    }

    /// Build a client that dials lazily via `connector` and redials after
    /// a poisoned connection. The first call performs the first dial.
    pub fn with_connector(connector: Connector, net: Option<NetCost>) -> Self {
        RpcClient {
            shared: Arc::new(Shared {
                state: Mutex::new(ChannelState {
                    writer: None,
                    generation: 0,
                    reader_stop: None,
                    pending: HashMap::new(),
                    waiting: 0,
                }),
                cond: Condvar::new(),
                metrics: Mutex::new(None),
            }),
            connector: Some(connector),
            net,
            metrics: None,
            window: DEFAULT_WINDOW,
            next_id: AtomicU64::new(1),
            calls: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        }
    }

    /// Attach pre-registered metric handles (see [`ClientMetrics`]).
    /// Called once while building the client, before it is shared.
    pub fn set_metrics(&mut self, metrics: Arc<ClientMetrics>) {
        *self.shared.metrics.lock() = Some(Arc::clone(&metrics));
        self.metrics = Some(metrics);
    }

    /// Cap the number of requests in flight per connection (minimum 1;
    /// default 64). A send that would exceed the window blocks until an
    /// in-flight call completes. Called once while building the client.
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// Total completed exchanges (including ones carrying error statuses).
    pub fn call_count(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Times a poisoned or absent connection was redialed.
    pub fn reconnect_count(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Issue one unary call and block (unboundedly) for its response.
    pub fn call(&self, method: u32, body: Bytes) -> Result<Bytes, RpcError> {
        self.call_with_deadline(method, body, None)
    }

    /// Issue one unary call, waiting at most `deadline` for its response.
    ///
    /// On expiry the call fails with [`RpcError::Deadline`] and abandons
    /// its pending slot; the connection and its other in-flight calls are
    /// unaffected (the late response is discarded by its correlation id).
    pub fn call_with_deadline(
        &self,
        method: u32,
        body: Bytes,
        deadline: Option<Duration>,
    ) -> Result<Bytes, RpcError> {
        self.call_async(method, body)?.wait_deadline(deadline)
    }

    /// Send one request and return a [`PendingCall`] ticket without
    /// waiting for the response; other calls may be issued and completed
    /// while this one is in flight. Blocks only if the in-flight window
    /// is full or the connection must be (re)dialed.
    pub fn call_async(&self, method: u32, body: Bytes) -> Result<PendingCall<'_>, RpcError> {
        let call_id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let request = Request {
            call_id,
            method,
            body,
        };
        let req_len = request.body.len();
        let t0 = self.net.as_ref().map(|n| n.clock.now());
        let mut st = self.shared.state.lock();
        loop {
            if st.writer.is_none() {
                self.dial_locked(&mut st)?;
            }
            self.ensure_reader_locked(&mut st)?;
            if st.waiting < self.window {
                break;
            }
            self.shared.cond.wait(&mut st);
        }
        st.pending.insert(call_id, PendingState::Waiting);
        st.waiting += 1;
        if let Some(m) = &self.metrics {
            m.in_flight.record(st.waiting as u64);
        }
        let started = Instant::now();
        let generation = st.generation;
        let frame = request.to_frame();
        if let Err(e) = st.writer.as_mut().expect("writer present").send(&frame) {
            st.pending.remove(&call_id);
            st.waiting -= 1;
            let cause = PoisonCause::Transport(e.kind(), e.to_string());
            drop(st);
            self.shared.poison(generation, cause);
            return Err(RpcError::Transport(e));
        }
        Ok(PendingCall {
            client: self,
            call_id,
            method,
            req_len,
            started,
            t0,
            claimed: false,
        })
    }

    /// Dial via the connector. Caller holds the state lock.
    fn dial_locked(&self, st: &mut ChannelState) -> Result<(), RpcError> {
        let connector = self.connector.as_ref().ok_or_else(|| {
            RpcError::Transport(io::Error::new(
                io::ErrorKind::NotConnected,
                "connection poisoned and no connector configured",
            ))
        })?;
        let fresh = connector().map_err(RpcError::Transport)?;
        st.writer = Some(fresh);
        st.generation += 1;
        if let Some(stop) = st.reader_stop.take() {
            stop.store(true, Ordering::Release);
        }
        self.reconnects.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.redials.inc();
        }
        Ok(())
    }

    /// Spawn the reader for the current connection if it isn't running
    /// (first send on an eager connection, or right after a redial).
    /// Caller holds the state lock.
    fn ensure_reader_locked(&self, st: &mut ChannelState) -> Result<(), RpcError> {
        if st.reader_stop.is_some() {
            return Ok(());
        }
        let recv_half = match st.writer.as_ref().expect("writer present").try_clone() {
            Ok(half) => half,
            Err(e) => {
                st.writer = None;
                return Err(RpcError::Transport(e));
            }
        };
        let stop = Arc::new(AtomicBool::new(false));
        st.reader_stop = Some(Arc::clone(&stop));
        let shared = Arc::clone(&self.shared);
        let generation = st.generation;
        std::thread::Builder::new()
            .name("rpc-reader".to_string())
            .spawn(move || reader_loop(recv_half, shared, generation, stop))
            .expect("spawn rpc reader thread");
        Ok(())
    }
}

impl Drop for RpcClient {
    fn drop(&mut self) {
        // Release the reader thread promptly instead of waiting for the
        // server side to close the stream.
        let st = self.shared.state.lock();
        if let Some(stop) = &st.reader_stop {
            stop.store(true, Ordering::Release);
        }
    }
}

/// A ticket for one in-flight call issued by [`RpcClient::call_async`].
///
/// Consume it with [`PendingCall::wait`] or [`PendingCall::wait_deadline`]
/// to obtain the response. Dropping the ticket abandons the call: its
/// response, when it arrives, is discarded by the reader.
pub struct PendingCall<'a> {
    client: &'a RpcClient,
    call_id: u64,
    method: u32,
    req_len: usize,
    started: Instant,
    /// Virtual send timestamp, for overlapping net-cost charging.
    t0: Option<Duration>,
    claimed: bool,
}

impl PendingCall<'_> {
    /// The correlation id this call travels under (diagnostics only).
    pub fn call_id(&self) -> u64 {
        self.call_id
    }

    /// Block (unboundedly) until the response arrives.
    pub fn wait(self) -> Result<Bytes, RpcError> {
        self.wait_deadline(None)
    }

    /// Block until the response arrives or `deadline` elapses (measured
    /// from the send). On expiry the call abandons its pending slot and
    /// fails with [`RpcError::Deadline`]; the connection and its other
    /// in-flight calls are unaffected.
    pub fn wait_deadline(mut self, deadline: Option<Duration>) -> Result<Bytes, RpcError> {
        self.claimed = true;
        let shared = Arc::clone(&self.client.shared);
        let wait_until = deadline.map(|d| self.started + d);
        let mut st = shared.state.lock();
        loop {
            match st.pending.get(&self.call_id) {
                Some(PendingState::Done(_)) => {
                    let Some(PendingState::Done(result)) = st.pending.remove(&self.call_id) else {
                        unreachable!("checked above");
                    };
                    drop(st);
                    return self.finish(result);
                }
                Some(PendingState::Waiting) => {}
                None => {
                    return Err(RpcError::Protocol(format!(
                        "pending call {} vanished",
                        self.call_id
                    )))
                }
            }
            match wait_until {
                None => {
                    shared.cond.wait(&mut st);
                }
                Some(t) => {
                    let now = Instant::now();
                    let remaining = t.saturating_duration_since(now);
                    if remaining.is_zero() || shared.cond.wait_for(&mut st, remaining).timed_out() {
                        // A completion may have raced the timeout; prefer it.
                        if matches!(st.pending.get(&self.call_id), Some(PendingState::Done(_))) {
                            continue;
                        }
                        st.pending.remove(&self.call_id);
                        st.waiting -= 1;
                        shared.cond.notify_all();
                        drop(st);
                        if let Some(m) = &self.client.metrics {
                            m.deadline_expired.inc();
                        }
                        return Err(RpcError::Deadline(deadline.unwrap_or_default()));
                    }
                }
            }
        }
    }

    /// Account for a completed exchange and unwrap its payload.
    fn finish(&self, result: Result<Response, RpcError>) -> Result<Bytes, RpcError> {
        let response = result?;
        // Charge the modeled round-trip for this exchange (request +
        // response payloads on the wire), anchored at the virtual send
        // time so concurrent in-flight calls overlap instead of
        // accumulating serially.
        if let Some(net) = &self.client.net {
            let resp_len = match &response.result {
                Ok(b) => b.len(),
                Err(_) => 0,
            };
            let t0 = self.t0.unwrap_or_default();
            net.clock
                .advance_to(t0 + net.link.delay(self.req_len + resp_len));
        }
        self.client.calls.fetch_add(1, Ordering::Relaxed);
        // A completed exchange (even one carrying an error status) is a
        // measured call; transport/deadline failures are counted via
        // their own counters instead of polluting the latency
        // distribution.
        if let Some(m) = &self.client.metrics {
            m.latency(self.method)
                .record_duration(self.started.elapsed());
        }
        response.result.map_err(RpcError::Status)
    }
}

impl Drop for PendingCall<'_> {
    fn drop(&mut self) {
        if self.claimed {
            return;
        }
        // Abandon the call: free its slot (and window share) so the late
        // response is discarded by the reader.
        let mut st = self.client.shared.state.lock();
        if let Some(slot) = st.pending.remove(&self.call_id) {
            if matches!(slot, PendingState::Waiting) {
                st.waiting -= 1;
            }
            self.client.shared.cond.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::serve;
    use crate::service::{MethodId, Status, StatusCode};
    use ipc::InprocHub;
    use netsim::{Latency, LinkModel};
    use std::sync::Arc;
    use std::time::Duration;

    fn echo_service() -> Arc<dyn crate::Service> {
        Arc::new(|method: MethodId, req: Bytes| -> Result<Bytes, Status> {
            match method {
                1 => Ok(req), // echo
                2 => Err(Status::not_found("nope")),
                3 => {
                    // Simulated hang: longer than any test deadline.
                    std::thread::sleep(Duration::from_millis(200));
                    Ok(req)
                }
                4 => {
                    // Moderate per-request service delay for overlap tests.
                    std::thread::sleep(Duration::from_millis(100));
                    Ok(req)
                }
                m => Err(Status::unimplemented(m)),
            }
        })
    }

    fn setup() -> (crate::server::ServerHandle, RpcClient) {
        let hub = InprocHub::new();
        let listener = hub.bind("svc").unwrap();
        let handle = serve(Box::new(listener), echo_service());
        let client = RpcClient::new(Box::new(hub.connect("svc").unwrap()));
        (handle, client)
    }

    #[test]
    fn echo_roundtrip() {
        let (_srv, client) = setup();
        let out = client.call(1, Bytes::from_static(b"hello rpc")).unwrap();
        assert_eq!(&out[..], b"hello rpc");
        assert_eq!(client.call_count(), 1);
    }

    #[test]
    fn status_errors_propagate() {
        let (_srv, client) = setup();
        let err = client.call(2, Bytes::new()).unwrap_err();
        assert_eq!(err.status().unwrap().code, StatusCode::NotFound);
        let err = client.call(99, Bytes::new()).unwrap_err();
        assert_eq!(err.status().unwrap().code, StatusCode::Unimplemented);
    }

    #[test]
    fn many_sequential_calls() {
        let (srv, client) = setup();
        for i in 0..200u32 {
            let body = Bytes::from(i.to_le_bytes().to_vec());
            assert_eq!(client.call(1, body.clone()).unwrap(), body);
        }
        assert_eq!(srv.metrics().calls.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn concurrent_callers_share_a_client() {
        let (_srv, client) = setup();
        let client = Arc::new(client);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let c = Arc::clone(&client);
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        let body = Bytes::from(vec![t as u8; (i % 7 + 1) as usize]);
                        assert_eq!(c.call(1, body.clone()).unwrap(), body);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(client.call_count(), 400);
    }

    #[test]
    fn multiple_clients_one_server() {
        let hub = InprocHub::new();
        let listener = hub.bind("svc").unwrap();
        let srv = serve(Box::new(listener), echo_service());
        let clients: Vec<RpcClient> = (0..4)
            .map(|_| RpcClient::new(Box::new(hub.connect("svc").unwrap())))
            .collect();
        for (i, c) in clients.iter().enumerate() {
            let body = Bytes::from(vec![i as u8; 4]);
            assert_eq!(c.call(1, body.clone()).unwrap(), body);
        }
        assert_eq!(srv.metrics().connections.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn net_cost_charged_to_virtual_clock() {
        let hub = InprocHub::new();
        let listener = hub.bind("svc").unwrap();
        let _srv = serve(Box::new(listener), echo_service());
        let clock = Clock::virtual_time();
        let net = NetCost {
            link: SharedLink::new(
                LinkModel {
                    base: Latency::Constant(Duration::from_millis(2)),
                    secs_per_byte: 0.0,
                },
                1,
            ),
            clock: clock.clone(),
        };
        let client = RpcClient::with_net(Box::new(hub.connect("svc").unwrap()), Some(net));
        client.call(1, Bytes::from_static(b"x")).unwrap();
        client.call(1, Bytes::from_static(b"x")).unwrap();
        // Sequential calls accumulate serially on the virtual clock.
        assert_eq!(clock.now(), Duration::from_millis(4));
    }

    #[test]
    fn pipelined_net_cost_overlaps_on_virtual_clock() {
        let hub = InprocHub::new();
        let listener = hub.bind("svc").unwrap();
        let _srv = serve(Box::new(listener), echo_service());
        let clock = Clock::virtual_time();
        let net = NetCost {
            link: SharedLink::new(
                LinkModel {
                    base: Latency::Constant(Duration::from_millis(2)),
                    secs_per_byte: 0.0,
                },
                1,
            ),
            clock: clock.clone(),
        };
        let client = Arc::new(RpcClient::with_net(
            Box::new(hub.connect("svc").unwrap()),
            Some(net),
        ));
        // 8 concurrent calls all depart at t=0 (the barrier plus the
        // 100ms service delay guarantee every send happens before any
        // completion); their modeled round trips overlap to ~1 RTT
        // instead of 8 RTTs.
        let barrier = Arc::new(std::sync::Barrier::new(8));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&client);
                let b = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    b.wait();
                    c.call(4, Bytes::from_static(b"x")).map(|_| ())
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap().unwrap();
        }
        assert_eq!(clock.now(), Duration::from_millis(2));
    }

    #[test]
    fn call_after_server_shutdown_fails() {
        let (mut srv, client) = setup();
        // Establish the connection first.
        client.call(1, Bytes::new()).unwrap();
        srv.shutdown();
        // Shutdown joins the connection threads, so the next call sees a
        // dead peer (either at send, or via the reader's poison).
        let err = client.call(1, Bytes::new()).unwrap_err();
        assert!(matches!(err, RpcError::Transport(_)), "got {err}");
        // And new connections are refused.
        let hub = InprocHub::new();
        assert!(hub.connect("svc").is_err());
    }

    #[test]
    fn deadline_expires_on_hung_handler() {
        let (_srv, client) = setup();
        let t0 = std::time::Instant::now();
        let err = client
            .call_with_deadline(3, Bytes::new(), Some(Duration::from_millis(30)))
            .unwrap_err();
        assert!(matches!(err, RpcError::Deadline(_)), "got {err}");
        assert!(err.is_retryable());
        // The call returned well before the 200ms handler finished.
        assert!(t0.elapsed() < Duration::from_millis(150));
    }

    #[test]
    fn deadline_does_not_poison_connection() {
        let (_srv, client) = setup();
        client
            .call_with_deadline(3, Bytes::new(), Some(Duration::from_millis(20)))
            .unwrap_err();
        // With correlation ids the late response is dropped by id; the
        // connection survives, so follow-up calls need no connector.
        let out = client.call(1, Bytes::from_static(b"x")).unwrap();
        assert_eq!(&out[..], b"x");
        // Even after the hung handler's late response finally arrives,
        // the stream stays synchronized.
        std::thread::sleep(Duration::from_millis(250));
        let out = client.call(1, Bytes::from_static(b"y")).unwrap();
        assert_eq!(&out[..], b"y");
    }

    #[test]
    fn deadline_does_not_redial() {
        let hub = InprocHub::new();
        let listener = hub.bind("svc").unwrap();
        let _srv = serve(Box::new(listener), echo_service());
        let dial_hub = hub.clone();
        let client = RpcClient::with_connector(
            Box::new(move || {
                dial_hub
                    .connect("svc")
                    .map(|c| Box::new(c) as Box<dyn Conn>)
            }),
            None,
        );
        // First call dials lazily.
        assert_eq!(&client.call(1, Bytes::from_static(b"a")).unwrap()[..], b"a");
        assert_eq!(client.reconnect_count(), 1);
        // A deadline expiry abandons its slot but keeps the connection;
        // the next call reuses it without redialing.
        client
            .call_with_deadline(3, Bytes::new(), Some(Duration::from_millis(20)))
            .unwrap_err();
        assert_eq!(&client.call(1, Bytes::from_static(b"b")).unwrap()[..], b"b");
        assert_eq!(client.reconnect_count(), 1);
    }

    #[test]
    fn connector_redials_after_transport_failure() {
        let hub = InprocHub::new();
        let listener = hub.bind("svc").unwrap();
        let mut srv = serve(Box::new(listener), echo_service());
        let dial_hub = hub.clone();
        let client = RpcClient::with_connector(
            Box::new(move || {
                dial_hub
                    .connect("svc")
                    .map(|c| Box::new(c) as Box<dyn Conn>)
            }),
            None,
        );
        assert_eq!(&client.call(1, Bytes::from_static(b"a")).unwrap()[..], b"a");
        assert_eq!(client.reconnect_count(), 1);
        // Kill the server: the next call fails and poisons the connection.
        srv.shutdown();
        client.call(1, Bytes::new()).unwrap_err();
        // Restart and observe a transparent redial.
        let listener = hub.bind("svc").unwrap();
        let _srv2 = serve(Box::new(listener), echo_service());
        assert_eq!(&client.call(1, Bytes::from_static(b"b")).unwrap()[..], b"b");
        assert_eq!(client.reconnect_count(), 2);
    }

    #[test]
    fn generous_deadline_does_not_interfere() {
        let (_srv, client) = setup();
        for i in 0..20u32 {
            let body = Bytes::from(i.to_le_bytes().to_vec());
            let out = client
                .call_with_deadline(1, body.clone(), Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(out, body);
        }
    }

    #[test]
    fn concurrent_calls_overlap_on_one_connection() {
        // Regression for the lock-step client, which serialized callers on
        // a connection mutex: two concurrent calls with a 100ms service
        // delay must overlap (total well under 2× a single call).
        let (_srv, client) = setup();
        let client = Arc::new(client);
        let t0 = Instant::now();
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let c = Arc::clone(&client);
                std::thread::spawn(move || c.call(4, Bytes::from_static(b"x")).map(|_| ()))
            })
            .collect();
        for t in threads {
            t.join().unwrap().unwrap();
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(180),
            "calls serialized: {elapsed:?} (lock-step would be ≥ 200ms)"
        );
    }

    #[test]
    fn out_of_order_completion() {
        // Slow call issued first; fast call returns first.
        let (_srv, client) = setup();
        let slow = client.call_async(3, Bytes::from_static(b"slow")).unwrap();
        let t0 = Instant::now();
        let fast = client.call(1, Bytes::from_static(b"fast")).unwrap();
        assert_eq!(&fast[..], b"fast");
        assert!(
            t0.elapsed() < Duration::from_millis(150),
            "fast call queued behind the slow one"
        );
        assert_eq!(&slow.wait().unwrap()[..], b"slow");
    }

    #[test]
    fn deadline_expiry_does_not_poison_neighbors() {
        let (_srv, client) = setup();
        let client = Arc::new(client);
        // One call that will expire, surrounded by healthy in-flight calls.
        let doomed = client.call_async(3, Bytes::new()).unwrap();
        let neighbors: Vec<_> = (0..4)
            .map(|i| {
                let c = Arc::clone(&client);
                std::thread::spawn(move || {
                    let body = Bytes::from(vec![i as u8; 8]);
                    let out = c.call(4, body.clone())?;
                    assert_eq!(out, body);
                    Ok::<_, RpcError>(())
                })
            })
            .collect();
        let err = doomed
            .wait_deadline(Some(Duration::from_millis(30)))
            .unwrap_err();
        assert!(matches!(err, RpcError::Deadline(_)), "got {err}");
        for t in neighbors {
            t.join().unwrap().unwrap();
        }
        // The connection was never poisoned or redialed.
        assert_eq!(client.reconnect_count(), 0);
        let out = client.call(1, Bytes::from_static(b"after")).unwrap();
        assert_eq!(&out[..], b"after");
    }

    #[test]
    fn redial_with_calls_in_flight() {
        let hub = InprocHub::new();
        let listener = hub.bind("svc").unwrap();
        let mut srv = serve(Box::new(listener), echo_service());
        let dial_hub = hub.clone();
        let client = RpcClient::with_connector(
            Box::new(move || {
                dial_hub
                    .connect("svc")
                    .map(|c| Box::new(c) as Box<dyn Conn>)
            }),
            None,
        );
        assert_eq!(&client.call(1, Bytes::from_static(b"a")).unwrap()[..], b"a");
        // Leave a slow call in flight, then tear the server down under it.
        let in_flight = client.call_async(3, Bytes::from_static(b"slow")).unwrap();
        srv.shutdown();
        // The in-flight call must resolve (its handler raced shutdown: it
        // either delivered a response before teardown or the poison failed
        // it) — the key property is that it cannot hang.
        let _ = in_flight.wait_deadline(Some(Duration::from_secs(2)));
        // A fresh server and one more call: the client redials and works.
        let listener = hub.bind("svc").unwrap();
        let _srv2 = serve(Box::new(listener), echo_service());
        let mut out = client.call(1, Bytes::from_static(b"b"));
        if out.is_err() {
            // The teardown may have been observed only by this call
            // (poison at send); one retry lands on the fresh connection.
            out = client.call(1, Bytes::from_static(b"b"));
        }
        assert_eq!(&out.unwrap()[..], b"b");
        assert!(client.reconnect_count() >= 2);
    }

    #[test]
    fn in_flight_window_caps_pipeline_depth() {
        let hub = InprocHub::new();
        let listener = hub.bind("svc").unwrap();
        let _srv = serve(Box::new(listener), echo_service());
        let registry = obs::Registry::new();
        let mut client = RpcClient::new(Box::new(hub.connect("svc").unwrap()));
        client.set_window(2);
        client.set_metrics(ClientMetrics::register(&registry, "rpc.client.win", &[]));
        let client = Arc::new(client);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&client);
                std::thread::spawn(move || c.call(4, Bytes::from_static(b"x")).map(|_| ()))
            })
            .collect();
        for t in threads {
            t.join().unwrap().unwrap();
        }
        let snap = registry.snapshot();
        let depth = snap.histogram("rpc.client.win.in_flight").unwrap();
        assert_eq!(depth.count, 4);
        assert!(depth.max <= 2, "window exceeded: depth {}", depth.max);
    }

    #[test]
    fn client_metrics_record_latency_and_failure_modes() {
        let hub = InprocHub::new();
        let listener = hub.bind("svc").unwrap();
        let _srv = serve(Box::new(listener), echo_service());
        let registry = obs::Registry::new();
        let dial_hub = hub.clone();
        let mut client = RpcClient::with_connector(
            Box::new(move || {
                dial_hub
                    .connect("svc")
                    .map(|c| Box::new(c) as Box<dyn Conn>)
            }),
            None,
        );
        client.set_metrics(ClientMetrics::register(
            &registry,
            "rpc.client.peer",
            &[(1, "echo"), (3, "hang")],
        ));

        client.call(1, Bytes::from_static(b"x")).unwrap();
        client.call(1, Bytes::from_static(b"y")).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rpc.client.peer.redials"), 1);
        let echo = snap.histogram("rpc.client.peer.echo.latency_ns").unwrap();
        assert_eq!(echo.count, 2);
        assert!(echo.p50() > 0, "in-process call still takes wall time");
        // Pipeline depth was sampled at each send.
        assert_eq!(
            snap.histogram("rpc.client.peer.in_flight").unwrap().count,
            2
        );

        // Deadline expiry: counted, does NOT poison the connection, and
        // does NOT pollute the verb's latency histogram.
        client
            .call_with_deadline(3, Bytes::new(), Some(Duration::from_millis(20)))
            .unwrap_err();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rpc.client.peer.deadline_expired"), 1);
        assert_eq!(snap.counter("rpc.client.peer.poisoned"), 0);
        assert_eq!(
            snap.histogram("rpc.client.peer.hang.latency_ns")
                .unwrap()
                .count,
            0
        );

        // A completed exchange carrying an error status is still measured;
        // unregistered verbs land in the `other` bucket. No redial
        // happened: the deadline left the connection alive.
        client.call(99, Bytes::new()).unwrap_err();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("rpc.client.peer.redials"), 1);
        assert_eq!(
            snap.histogram("rpc.client.peer.other.latency_ns")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn retryability_classification() {
        assert!(RpcError::Transport(io::Error::new(io::ErrorKind::BrokenPipe, "x")).is_retryable());
        assert!(RpcError::Deadline(Duration::from_millis(5)).is_retryable());
        assert!(RpcError::Status(Status::new(StatusCode::Unavailable, "down")).is_retryable());
        assert!(!RpcError::Status(Status::not_found("gone")).is_retryable());
        assert!(!RpcError::Protocol("junk".into()).is_retryable());
    }
}
