//! Store-to-store interconnect protocol.
//!
//! The messages Plasma stores exchange over the (simulated) gRPC channel:
//! object-id lookup (with optional pinning for distributed usage
//! tracking), id reservation for system-wide uniqueness, reference
//! release feedback, and forwarded delete. Encoded with the
//! protobuf-style wire format from [`rpclite::wire`].

use bytes::Bytes;
use plasma::{ObjectId, ObjectLocation, OBJECT_ID_LEN};
use rpclite::wire::{MsgDec, MsgEnc, WireError};
use tfsim::{NodeId, SegKey};

/// Interconnect method ids.
pub mod method {
    /// Batched object lookup (`LookupReq` → `LookupResp`).
    pub const LOOKUP: u32 = 1;
    /// Reserve an object id for creation (`ReserveReq` → `ReserveResp`).
    pub const RESERVE: u32 = 2;
    /// Release references held on behalf of a remote node (`ReleaseReq`).
    pub const RELEASE: u32 = 3;
    /// Does a sealed object exist here? (`ContainsReq` → `ContainsResp`).
    pub const CONTAINS: u32 = 4;
    /// Forwarded delete (`DeleteReq` → empty).
    pub const DELETE: u32 = 5;
    /// List the responder's sealed objects (empty → `ListResp`).
    pub const LIST: u32 = 6;
    /// Forwarded deferred delete (`IdReq` → `BoolResp` deleted-now).
    pub const DELETE_DEFERRED: u32 = 7;
    /// Metrics introspection (empty → `MetricsResp`): the responder's
    /// full [`obs`] snapshot, so any node can observe any peer live.
    pub const METRICS: u32 = 8;

    /// Method-id → verb-name table (metric labels, diagnostics).
    pub const VERBS: &[(u32, &str)] = &[
        (LOOKUP, "lookup"),
        (RESERVE, "reserve"),
        (RELEASE, "release"),
        (CONTAINS, "contains"),
        (DELETE, "delete"),
        (LIST, "list"),
        (DELETE_DEFERRED, "delete_deferred"),
        (METRICS, "metrics"),
    ];
}

fn enc_id(e: &mut MsgEnc, field: u32, id: &ObjectId) {
    e.bytes(field, id.as_bytes());
}

fn dec_id(b: &Bytes) -> Result<ObjectId, WireError> {
    let arr: [u8; OBJECT_ID_LEN] = b[..].try_into().map_err(|_| WireError::MissingField(0))?;
    Ok(ObjectId::from_bytes(arr))
}

fn enc_location(loc: &ObjectLocation) -> MsgEnc {
    let mut e = MsgEnc::new();
    enc_id(&mut e, 1, &loc.id);
    e.uint(2, u64::from(loc.seg.owner.0))
        .uint(3, u64::from(loc.seg.index))
        .uint(4, loc.offset)
        .uint(5, loc.data_size)
        .uint(6, loc.metadata_size);
    e
}

fn dec_location(b: Bytes) -> Result<ObjectLocation, WireError> {
    let f = MsgDec::new(b).collect()?;
    Ok(ObjectLocation {
        id: dec_id(&f.bytes(1)?)?,
        seg: SegKey {
            owner: NodeId(u16::try_from(f.uint(2)?).map_err(|_| WireError::MissingField(2))?),
            index: u32::try_from(f.uint(3)?).map_err(|_| WireError::MissingField(3))?,
        },
        offset: f.uint(4)?,
        data_size: f.uint(5)?,
        metadata_size: f.uint(6)?,
    })
}

/// Batched lookup request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupReq {
    /// Node issuing the lookup (for usage tracking).
    pub requester: NodeId,
    /// If true, found objects are pinned on behalf of the requester.
    pub pin: bool,
    pub ids: Vec<ObjectId>,
}

impl LookupReq {
    pub fn encode(&self) -> Bytes {
        let mut e = MsgEnc::new();
        e.uint(1, u64::from(self.requester.0))
            .uint(2, u64::from(self.pin));
        for id in &self.ids {
            enc_id(&mut e, 3, id);
        }
        e.finish()
    }

    pub fn decode(b: Bytes) -> Result<Self, WireError> {
        let f = MsgDec::new(b).collect()?;
        let ids = f
            .get_all(3)
            .map(|v| {
                v.as_bytes()
                    .ok_or(WireError::MissingField(3))
                    .and_then(dec_id)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LookupReq {
            requester: NodeId(u16::try_from(f.uint(1)?).map_err(|_| WireError::MissingField(1))?),
            pin: f.uint_or(2, 0) != 0,
            ids,
        })
    }
}

/// Lookup response: the subset of requested objects present (sealed) here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupResp {
    pub found: Vec<ObjectLocation>,
}

impl LookupResp {
    pub fn encode(&self) -> Bytes {
        let mut e = MsgEnc::new();
        for loc in &self.found {
            e.message(1, enc_location(loc));
        }
        e.finish()
    }

    pub fn decode(b: Bytes) -> Result<Self, WireError> {
        let f = MsgDec::new(b).collect()?;
        let found = f
            .get_all(1)
            .map(|v| {
                v.as_bytes()
                    .cloned()
                    .ok_or(WireError::MissingField(1))
                    .and_then(dec_location)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(LookupResp { found })
    }
}

/// Id-reservation request (system-wide identifier uniqueness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReserveReq {
    pub requester: NodeId,
    pub id: ObjectId,
}

impl ReserveReq {
    pub fn encode(&self) -> Bytes {
        let mut e = MsgEnc::new();
        e.uint(1, u64::from(self.requester.0));
        enc_id(&mut e, 2, &self.id);
        e.finish()
    }

    pub fn decode(b: Bytes) -> Result<Self, WireError> {
        let f = MsgDec::new(b).collect()?;
        Ok(ReserveReq {
            requester: NodeId(u16::try_from(f.uint(1)?).map_err(|_| WireError::MissingField(1))?),
            id: dec_id(&f.bytes(2)?)?,
        })
    }
}

/// Id-reservation response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReserveResp {
    /// The requester may proceed with this id.
    pub granted: bool,
}

impl ReserveResp {
    pub fn encode(&self) -> Bytes {
        let mut e = MsgEnc::new();
        e.uint(1, u64::from(self.granted));
        e.finish()
    }

    pub fn decode(b: Bytes) -> Result<Self, WireError> {
        let f = MsgDec::new(b).collect()?;
        Ok(ReserveResp {
            granted: f.uint_or(1, 0) != 0,
        })
    }
}

/// Release references the responder holds on behalf of `requester`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseReq {
    pub requester: NodeId,
    pub id: ObjectId,
}

impl ReleaseReq {
    pub fn encode(&self) -> Bytes {
        let mut e = MsgEnc::new();
        e.uint(1, u64::from(self.requester.0));
        enc_id(&mut e, 2, &self.id);
        e.finish()
    }

    pub fn decode(b: Bytes) -> Result<Self, WireError> {
        let f = MsgDec::new(b).collect()?;
        Ok(ReleaseReq {
            requester: NodeId(u16::try_from(f.uint(1)?).map_err(|_| WireError::MissingField(1))?),
            id: dec_id(&f.bytes(2)?)?,
        })
    }
}

/// Contains / delete requests carry just an id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdReq {
    pub id: ObjectId,
}

impl IdReq {
    pub fn encode(&self) -> Bytes {
        let mut e = MsgEnc::new();
        enc_id(&mut e, 1, &self.id);
        e.finish()
    }

    pub fn decode(b: Bytes) -> Result<Self, WireError> {
        let f = MsgDec::new(b).collect()?;
        Ok(IdReq {
            id: dec_id(&f.bytes(1)?)?,
        })
    }
}

/// Per-object info in a list response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ListEntry {
    pub id: ObjectId,
    pub data_size: u64,
    pub metadata_size: u64,
    pub ref_count: u64,
}

/// Response to a LIST: the responder's sealed objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListResp {
    pub node: NodeId,
    pub entries: Vec<ListEntry>,
}

impl ListResp {
    pub fn encode(&self) -> Bytes {
        let mut e = MsgEnc::new();
        e.uint(1, u64::from(self.node.0));
        for entry in &self.entries {
            let mut m = MsgEnc::new();
            enc_id(&mut m, 1, &entry.id);
            m.uint(2, entry.data_size)
                .uint(3, entry.metadata_size)
                .uint(4, entry.ref_count);
            e.message(2, m);
        }
        e.finish()
    }

    pub fn decode(b: Bytes) -> Result<Self, WireError> {
        let f = MsgDec::new(b).collect()?;
        let node = NodeId(u16::try_from(f.uint(1)?).map_err(|_| WireError::MissingField(1))?);
        let entries = f
            .get_all(2)
            .map(|v| -> Result<ListEntry, WireError> {
                let m = MsgDec::new(v.as_bytes().cloned().ok_or(WireError::MissingField(2))?)
                    .collect()?;
                Ok(ListEntry {
                    id: dec_id(&m.bytes(1)?)?,
                    data_size: m.uint(2)?,
                    metadata_size: m.uint(3)?,
                    ref_count: m.uint_or(4, 0),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ListResp { node, entries })
    }
}

/// Response to a METRICS call: the responder's serialized
/// [`obs::MetricsSnapshot`] (opaque here; the obs codec owns the format,
/// so the interconnect never needs re-releasing when metrics evolve).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsResp {
    pub node: NodeId,
    pub snapshot: Bytes,
}

impl MetricsResp {
    pub fn encode(&self) -> Bytes {
        let mut e = MsgEnc::new();
        e.uint(1, u64::from(self.node.0)).bytes(2, &self.snapshot);
        e.finish()
    }

    pub fn decode(b: Bytes) -> Result<Self, WireError> {
        let f = MsgDec::new(b).collect()?;
        Ok(MetricsResp {
            node: NodeId(u16::try_from(f.uint(1)?).map_err(|_| WireError::MissingField(1))?),
            snapshot: f.bytes(2)?,
        })
    }
}

/// Boolean response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoolResp {
    pub value: bool,
}

impl BoolResp {
    pub fn encode(&self) -> Bytes {
        let mut e = MsgEnc::new();
        e.uint(1, u64::from(self.value));
        e.finish()
    }

    pub fn decode(b: Bytes) -> Result<Self, WireError> {
        let f = MsgDec::new(b).collect()?;
        Ok(BoolResp {
            value: f.uint_or(1, 0) != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(n: u8) -> ObjectLocation {
        ObjectLocation {
            id: ObjectId::from_bytes([n; 20]),
            seg: SegKey {
                owner: NodeId(2),
                index: 0,
            },
            offset: 128,
            data_size: 1 << 20,
            metadata_size: 64,
        }
    }

    #[test]
    fn lookup_req_roundtrip() {
        let r = LookupReq {
            requester: NodeId(1),
            pin: true,
            ids: vec![ObjectId::from_name("a"), ObjectId::from_name("b")],
        };
        assert_eq!(LookupReq::decode(r.encode()).unwrap(), r);
        let empty = LookupReq {
            requester: NodeId(0),
            pin: false,
            ids: vec![],
        };
        assert_eq!(LookupReq::decode(empty.encode()).unwrap(), empty);
    }

    #[test]
    fn lookup_resp_roundtrip() {
        let r = LookupResp {
            found: vec![loc(1), loc(2), loc(3)],
        };
        assert_eq!(LookupResp::decode(r.encode()).unwrap(), r);
        let none = LookupResp { found: vec![] };
        assert_eq!(LookupResp::decode(none.encode()).unwrap(), none);
    }

    #[test]
    fn reserve_roundtrip() {
        let r = ReserveReq {
            requester: NodeId(3),
            id: ObjectId::from_name("new"),
        };
        assert_eq!(ReserveReq::decode(r.encode()).unwrap(), r);
        for granted in [true, false] {
            let resp = ReserveResp { granted };
            assert_eq!(ReserveResp::decode(resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn release_and_id_reqs_roundtrip() {
        let r = ReleaseReq {
            requester: NodeId(1),
            id: ObjectId::from_name("x"),
        };
        assert_eq!(ReleaseReq::decode(r.encode()).unwrap(), r);
        let i = IdReq {
            id: ObjectId::from_name("y"),
        };
        assert_eq!(IdReq::decode(i.encode()).unwrap(), i);
        let b = BoolResp { value: true };
        assert_eq!(BoolResp::decode(b.encode()).unwrap(), b);
    }

    #[test]
    fn list_resp_roundtrip() {
        let r = ListResp {
            node: NodeId(4),
            entries: vec![
                ListEntry {
                    id: ObjectId::from_name("l1"),
                    data_size: 100,
                    metadata_size: 4,
                    ref_count: 2,
                },
                ListEntry {
                    id: ObjectId::from_name("l2"),
                    data_size: 0,
                    metadata_size: 0,
                    ref_count: 0,
                },
            ],
        };
        assert_eq!(ListResp::decode(r.encode()).unwrap(), r);
        let empty = ListResp {
            node: NodeId(0),
            entries: vec![],
        };
        assert_eq!(ListResp::decode(empty.encode()).unwrap(), empty);
    }

    #[test]
    fn metrics_resp_roundtrip() {
        let r = MetricsResp {
            node: NodeId(7),
            snapshot: Bytes::from_static(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
        };
        assert_eq!(MetricsResp::decode(r.encode()).unwrap(), r);
        let empty = MetricsResp {
            node: NodeId(0),
            snapshot: Bytes::new(),
        };
        assert_eq!(MetricsResp::decode(empty.encode()).unwrap(), empty);
    }

    #[test]
    fn verb_table_covers_every_method_id() {
        for id in 1..=method::METRICS {
            assert!(
                method::VERBS.iter().any(|(v, _)| *v == id),
                "method id {id} missing from VERBS"
            );
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(LookupReq::decode(Bytes::from_static(&[0xFF, 0xFF])).is_err());
        assert!(ReserveReq::decode(Bytes::new()).is_err());
    }
}
