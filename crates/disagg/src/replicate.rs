//! Hot-object **read replication** bookkeeping.
//!
//! Sealed objects are immutable, so a replica can serve reads forever —
//! until the owner deletes the object. The protocol therefore has
//! exactly one dangerous transition: delete. The store handles it by
//! invalidating every replica *before* the owner's local delete (see
//! DESIGN.md §13); a live replica thus implies the object has not been
//! successfully deleted, which is what lets replicas be served as plain
//! sealed local objects with no per-read coordination.
//!
//! This module holds the pure state: [`ReplicationConfig`] (what gets
//! replicated, how widely) and [`ReplicaLedger`], a two-sided record in
//! the mould of `elastic::BorrowLedger` — owners remember which peers
//! hold replicas of their objects, holders remember which owner each
//! replica came from. The chaos quiesce audit cross-checks both sides
//! against cluster state (replica set ⊆ membership, never lent and
//! replicated at once, no stale replica after a delete).

use parking_lot::Mutex;
use plasma::ObjectId;
use std::collections::{HashMap, HashSet};
use tfsim::NodeId;

/// What the replication machinery is allowed to do on one store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationConfig {
    /// Master switch. When false the store neither offers nor accepts
    /// replicas (existing benches and chaos plans replay unchanged).
    pub enabled: bool,
    /// Remote-read heat (per `HeatMap` window) an object must reach
    /// before it is offered a replica on its hottest reader.
    pub min_hits: u32,
    /// Cap on replica holders per object — bounds the invalidation
    /// fan-out a delete must complete before it may proceed.
    pub max_holders: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            enabled: true,
            min_hits: 8,
            max_holders: 2,
        }
    }
}

/// Per-ledger tallies reported by [`ReplicaLedger::counts`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaCounts {
    /// Owner-side entries: objects of ours replicated elsewhere.
    pub outstanding: usize,
    /// Holder-side entries: replicas we hold for other owners.
    pub held: usize,
}

#[derive(Default)]
struct ReplicaState {
    /// Owner side: per object, which peers hold a replica (and its
    /// recorded size for accounting).
    outstanding: HashMap<ObjectId, HashMap<NodeId, u64>>,
    /// Holder side: which owner each locally held replica belongs to.
    held: HashMap<ObjectId, NodeId>,
}

/// Two-sided replica record. The owner side is the authority the
/// delete path consults for its invalidation fan-out; the holder side
/// is what lets a node offer its replicas back during reconciliation
/// after partitions heal.
#[derive(Default)]
pub struct ReplicaLedger {
    state: Mutex<ReplicaState>,
}

impl ReplicaLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- owner side -------------------------------------------------

    /// Record (owner side) that `holder` now has a replica of `id`.
    pub fn record_held(&self, id: ObjectId, holder: NodeId, bytes: u64) {
        self.state
            .lock()
            .outstanding
            .entry(id)
            .or_default()
            .insert(holder, bytes);
    }

    /// The peers holding replicas of `id` (empty when none).
    pub fn holders(&self, id: ObjectId) -> Vec<NodeId> {
        self.state
            .lock()
            .outstanding
            .get(&id)
            .map(|m| m.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Number of peers holding replicas of `id`.
    pub fn holder_count(&self, id: ObjectId) -> usize {
        self.state
            .lock()
            .outstanding
            .get(&id)
            .map_or(0, |m| m.len())
    }

    /// True when `holder` is recorded as holding a replica of `id`.
    pub fn is_holder(&self, id: ObjectId, holder: NodeId) -> bool {
        self.state
            .lock()
            .outstanding
            .get(&id)
            .is_some_and(|m| m.contains_key(&holder))
    }

    /// Erase the owner-side entry for one `(id, holder)` pair, e.g.
    /// after a confirmed invalidation. Returns true when it existed.
    pub fn remove_holder(&self, id: ObjectId, holder: NodeId) -> bool {
        let mut state = self.state.lock();
        let Some(m) = state.outstanding.get_mut(&id) else {
            return false;
        };
        let existed = m.remove(&holder).is_some();
        if m.is_empty() {
            state.outstanding.remove(&id);
        }
        existed
    }

    /// Drop every owner-side entry naming `holder` whose id is *not* in
    /// `confirmed` — the replica-reconcile trim after a holder reports
    /// its surviving set. Returns how many entries were dropped.
    pub fn trim_held(&self, holder: NodeId, confirmed: &HashSet<ObjectId>) -> u64 {
        let mut state = self.state.lock();
        let mut dropped = 0;
        state.outstanding.retain(|id, m| {
            if !confirmed.contains(id) && m.remove(&holder).is_some() {
                dropped += 1;
            }
            !m.is_empty()
        });
        dropped
    }

    /// Owner-side snapshot: every `(id, holder)` pair, for audits.
    pub fn held_snapshot(&self) -> Vec<(ObjectId, NodeId)> {
        let state = self.state.lock();
        state
            .outstanding
            .iter()
            .flat_map(|(id, m)| m.keys().map(move |h| (*id, *h)))
            .collect()
    }

    // ---- holder side ------------------------------------------------

    /// Record (holder side) that a replica of `id` from `owner` lives
    /// here.
    pub fn record_replica(&self, id: ObjectId, owner: NodeId) {
        self.state.lock().held.insert(id, owner);
    }

    /// The owner a locally held replica of `id` belongs to, if any.
    pub fn replica_owner(&self, id: ObjectId) -> Option<NodeId> {
        self.state.lock().held.get(&id).copied()
    }

    /// Erase the holder-side entry for `id` when it names `owner`
    /// (owner-checked so a racing re-replication from a new owner epoch
    /// is not clobbered). Returns true when the entry was removed.
    pub fn remove_replica(&self, id: ObjectId, owner: NodeId) -> bool {
        let mut state = self.state.lock();
        if state.held.get(&id) == Some(&owner) {
            state.held.remove(&id);
            true
        } else {
            false
        }
    }

    /// Holder-side ids that came from `owner` — the set offered back
    /// during replica reconciliation.
    pub fn replicas_from(&self, owner: NodeId) -> Vec<ObjectId> {
        self.state
            .lock()
            .held
            .iter()
            .filter(|(_, o)| **o == owner)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Holder-side snapshot: every `(id, owner)` pair, for audits.
    pub fn replica_snapshot(&self) -> Vec<(ObjectId, NodeId)> {
        let state = self.state.lock();
        state.held.iter().map(|(id, o)| (*id, *o)).collect()
    }

    /// Entry tallies for gauges and audits.
    pub fn counts(&self) -> ReplicaCounts {
        let state = self.state.lock();
        ReplicaCounts {
            outstanding: state.outstanding.len(),
            held: state.held.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(name: &str) -> ObjectId {
        ObjectId::from_name(name)
    }

    #[test]
    fn owner_side_tracks_holders_per_object() {
        let ledger = ReplicaLedger::new();
        ledger.record_held(id("a"), NodeId(1), 100);
        ledger.record_held(id("a"), NodeId(2), 100);
        ledger.record_held(id("b"), NodeId(1), 50);
        assert_eq!(ledger.holder_count(id("a")), 2);
        assert!(ledger.is_holder(id("a"), NodeId(2)));
        assert!(!ledger.is_holder(id("b"), NodeId(2)));

        assert!(ledger.remove_holder(id("a"), NodeId(1)));
        assert!(!ledger.remove_holder(id("a"), NodeId(1)));
        assert_eq!(ledger.holders(id("a")), vec![NodeId(2)]);
        assert_eq!(ledger.counts().outstanding, 2);
        assert!(ledger.remove_holder(id("a"), NodeId(2)));
        assert_eq!(ledger.counts().outstanding, 1);
    }

    #[test]
    fn holder_side_is_owner_checked() {
        let ledger = ReplicaLedger::new();
        ledger.record_replica(id("a"), NodeId(3));
        assert_eq!(ledger.replica_owner(id("a")), Some(NodeId(3)));
        // A remove naming the wrong owner must not clobber the entry.
        assert!(!ledger.remove_replica(id("a"), NodeId(4)));
        assert_eq!(ledger.replica_owner(id("a")), Some(NodeId(3)));
        assert!(ledger.remove_replica(id("a"), NodeId(3)));
        assert_eq!(ledger.replica_owner(id("a")), None);
    }

    #[test]
    fn trim_drops_unconfirmed_entries_for_one_holder() {
        let ledger = ReplicaLedger::new();
        ledger.record_held(id("a"), NodeId(1), 10);
        ledger.record_held(id("b"), NodeId(1), 10);
        ledger.record_held(id("b"), NodeId(2), 10);
        ledger.record_held(id("c"), NodeId(2), 10);

        let confirmed: HashSet<ObjectId> = [id("a")].into_iter().collect();
        // Holder 1 reports only "a": its "b" entry is dropped; holder 2's
        // entries are untouched.
        assert_eq!(ledger.trim_held(NodeId(1), &confirmed), 1);
        assert!(ledger.is_holder(id("a"), NodeId(1)));
        assert!(!ledger.is_holder(id("b"), NodeId(1)));
        assert!(ledger.is_holder(id("b"), NodeId(2)));
        assert!(ledger.is_holder(id("c"), NodeId(2)));
    }

    #[test]
    fn snapshots_expose_both_sides() {
        let ledger = ReplicaLedger::new();
        ledger.record_held(id("a"), NodeId(1), 10);
        ledger.record_replica(id("z"), NodeId(9));
        let mut held = ledger.held_snapshot();
        held.sort();
        assert_eq!(held, vec![(id("a"), NodeId(1))]);
        assert_eq!(ledger.replica_snapshot(), vec![(id("z"), NodeId(9))]);
        assert_eq!(ledger.replicas_from(NodeId(9)), vec![id("z")]);
        assert!(ledger.replicas_from(NodeId(1)).is_empty());
        assert_eq!(
            ledger.counts(),
            ReplicaCounts {
                outstanding: 1,
                held: 1
            }
        );
    }
}
