//! Connection-thread bookkeeping under churn: finished handles must be
//! reaped as new connections arrive, not accumulated until shutdown.

use bytes::Bytes;
use rpclite::{RpcClient, Status};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn finished_connection_threads_are_reaped_under_churn() {
    let hub = ipc::InprocHub::new();
    let listener = hub.bind("churn").unwrap();
    let echo = Arc::new(|_m: u32, b: Bytes| -> Result<Bytes, Status> { Ok(b) });
    let srv = rpclite::serve(Box::new(listener), echo);

    for _ in 0..16 {
        let client = RpcClient::new(Box::new(hub.connect("churn").unwrap()));
        client.call(1, Bytes::from_static(b"ping")).unwrap();
        drop(client);
    }
    // Let the dropped connections' threads notice the hangup (they poll
    // the stop flag / socket every 20ms), then accept one more connection
    // so the accept loop reaps the finished handles.
    std::thread::sleep(Duration::from_millis(200));
    let client = RpcClient::new(Box::new(hub.connect("churn").unwrap()));
    client.call(1, Bytes::from_static(b"ping")).unwrap();

    assert_eq!(srv.metrics().connections.load(Ordering::Relaxed), 17);
    assert!(
        srv.tracked_connections() <= 2,
        "finished conn threads must be reaped under churn, still tracking {}",
        srv.tracked_connections()
    );
}
