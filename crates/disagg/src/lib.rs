//! # disagg — the memory-disaggregated distributed Plasma store
//!
//! The paper's contribution: Plasma stores on different nodes are
//! interconnected (gRPC-style RPC for control, the ThymesisFlow fabric for
//! data), giving clients transparent access to objects anywhere in the
//! cluster. Objects are sharded — each lives in exactly one store's
//! disaggregated memory — and consumers read them in place through the
//! fabric rather than copying them over the network.
//!
//! * [`DisaggStore`] — the distributed store engine (implements
//!   [`plasma::ObjectStore`], so the stock Plasma client and server work
//!   unchanged on top).
//! * [`Cluster`] — one-call harness that launches an N-node simulated
//!   deployment.
//! * [`IdCache`] — the paper's future-work remote-identifier cache, in a
//!   safe (pinning) and an unsafe (direct) variant.
//!
//! Remote lookups ride the batched `GET_MANY` interconnect verb: all ids
//! one peer must answer for travel in a single round trip, and
//! [`DisaggStore::batch_get`] exposes the batched hot path directly.
//!
//! ## Example: two nodes sharing an object
//!
//! ```
//! use disagg::{Cluster, ClusterConfig};
//! use plasma::ObjectId;
//! use std::time::Duration;
//!
//! let cluster = Cluster::launch(ClusterConfig::functional(2, 1 << 20)).unwrap();
//! let producer = cluster.client(0).unwrap();
//! let consumer = cluster.client(1).unwrap();
//!
//! let id = ObjectId::from_name("shared-table");
//! producer.put(id, b"column data", &[]).unwrap();
//!
//! // The consumer's local store RPCs store 0, then the buffer is read
//! // directly from node 0's disaggregated memory over the fabric.
//! let buf = consumer.get_one(id, Duration::from_secs(1)).unwrap();
//! assert_eq!(buf.read_all().unwrap(), b"column data");
//! consumer.release(id).unwrap();
//! ```

#![deny(missing_docs)]

pub mod cluster;
pub mod elastic;
pub mod fabric;
pub mod health;
pub mod idcache;
pub mod proto;
pub mod replicate;
pub mod ring;
pub mod store;
pub mod usage;

pub use cluster::{Cluster, ClusterConfig, LinkMap};
pub use elastic::{BorrowLedger, ElasticConfig, HeatMap, LedgerCounts};
pub use fabric::{DataPlaneKind, Fabric, FramedFabric, MappedFabric};
pub use health::{Admission, HealthConfig, PeerHealth, PeerState, PeerStats, RetryPolicy};
pub use idcache::{CacheMode, CachedEntry, IdCache};
pub use replicate::{ReplicaCounts, ReplicaLedger, ReplicationConfig};
pub use ring::{Membership, Ring};
pub use store::{DisaggConfig, DisaggStats, DisaggStore, InterconnectConfig, Peer};
pub use tfsim::NodeId;
pub use usage::{RemoteRefs, Reservations, ReserveOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use plasma::{ObjectId, ObjectStore, PlasmaError};
    use std::time::Duration;
    use tfsim::Path;

    fn two_nodes() -> Cluster {
        Cluster::launch(ClusterConfig::functional(2, 4 << 20)).unwrap()
    }

    #[test]
    fn remote_get_reads_through_fabric() {
        let c = two_nodes();
        let producer = c.client(0).unwrap();
        let consumer = c.client(1).unwrap();
        let id = ObjectId::from_name(&c.owned_id(0, "obj"));
        producer.put(id, &vec![0xEE; 50_000], b"meta").unwrap();

        let buf = consumer.get_one(id, Duration::from_secs(1)).unwrap();
        assert_eq!(buf.data().path(), Path::Remote);
        assert!(buf.read_all().unwrap().iter().all(|&b| b == 0xEE));
        assert_eq!(buf.metadata().read_all().unwrap(), b"meta");

        let snap = c.fabric().stats().snapshot();
        assert_eq!(snap.remote_read_bytes, 50_004);
        // Control went over RPC; data did not.
        assert_eq!(c.store(1).disagg_stats().lookup_rpcs, 1);
        consumer.release(id).unwrap();
    }

    #[test]
    fn local_get_needs_no_rpc() {
        let c = two_nodes();
        let client = c.client(0).unwrap();
        let id = ObjectId::from_name("local");
        client.put(id, b"here", &[]).unwrap();
        let _ = client.get_one(id, Duration::from_secs(1)).unwrap();
        assert_eq!(c.store(0).disagg_stats().lookup_rpcs, 0);
    }

    #[test]
    fn id_uniqueness_enforced_across_stores() {
        let c = two_nodes();
        let a = c.client(0).unwrap();
        let b = c.client(1).unwrap();
        let id = ObjectId::from_name("unique");
        a.put(id, b"first", &[]).unwrap();
        let err = b.create(id, 5, 0).unwrap_err();
        assert_eq!(err, PlasmaError::ObjectExists(id));
        // Ring placement makes uniqueness an owner-local check: neither
        // create broadcast a single reserve RPC.
        assert_eq!(c.store(0).disagg_stats().reserve_rpcs, 0);
        assert_eq!(c.store(1).disagg_stats().reserve_rpcs, 0);
    }

    #[test]
    fn remote_pin_blocks_eviction_until_release() {
        // Store 0 is small; a remote reader pins an object, then store 0
        // comes under memory pressure.
        let c = Cluster::launch(ClusterConfig::functional(2, 1 << 20)).unwrap();
        let producer = c.client(0).unwrap();
        let consumer = c.client(1).unwrap();
        let pinned = ObjectId::from_name(&c.owned_id(0, "pinned"));
        producer.put(pinned, &vec![1; 600 << 10], &[]).unwrap();
        let buf = consumer.get_one(pinned, Duration::from_secs(1)).unwrap();
        assert_eq!(c.store(0).remote_pin_count(), 1);

        // Pressure: this create cannot evict the pinned object. (The id
        // must place on node 0 — the ring would otherwise route it to
        // node 1's uncontended store.)
        let big = ObjectId::from_name(&c.owned_id(0, "big"));
        let err = producer.create(big, 600 << 10, 0).unwrap_err();
        assert!(matches!(err, PlasmaError::OutOfMemory { .. }));
        assert!(buf.read_all().unwrap().iter().all(|&b| b == 1));

        // After release the usage feedback frees it for eviction.
        consumer.release(pinned).unwrap();
        assert_eq!(c.store(0).remote_pin_count(), 0);
        assert_eq!(c.store(1).disagg_stats().releases_forwarded, 1);
        producer.put(big, &vec![2; 600 << 10], &[]).unwrap();
        assert!(!producer.contains(pinned).unwrap());
    }

    #[test]
    fn contains_and_delete_forward_to_owner() {
        let c = two_nodes();
        let a = c.client(0).unwrap();
        let b = c.client(1).unwrap();
        let id = ObjectId::from_name("owned-by-0");
        a.put(id, b"x", &[]).unwrap();
        assert!(b.contains(id).unwrap());
        b.delete(id).unwrap();
        assert!(!a.contains(id).unwrap());
        assert!(!b.contains(id).unwrap());
    }

    #[test]
    fn delete_of_missing_object_errors_everywhere() {
        let c = two_nodes();
        let b = c.client(1).unwrap();
        let id = ObjectId::from_name("ghost");
        assert_eq!(b.delete(id).unwrap_err(), PlasmaError::ObjectNotFound(id));
    }

    #[test]
    fn pinning_id_cache_reduces_rpc_fanout() {
        let mut cfg = ClusterConfig::functional(4, 4 << 20);
        cfg.id_cache = Some((CacheMode::Pinning, 1024));
        let c = Cluster::launch(cfg).unwrap();
        let producer = c.client(3).unwrap();
        let consumer = c.client(0).unwrap();
        let id = ObjectId::from_name("cached");
        producer.put(id, b"warm", &[]).unwrap();

        // Cold get: broadcast (up to 3 lookup RPCs, owner may come last).
        let _ = consumer.get_one(id, Duration::from_secs(1)).unwrap();
        let cold = c.store(0).disagg_stats().lookup_rpcs;
        consumer.release(id).unwrap();

        // Warm get: exactly one targeted RPC.
        let _ = consumer.get_one(id, Duration::from_secs(1)).unwrap();
        let warm = c.store(0).disagg_stats().lookup_rpcs - cold;
        assert_eq!(warm, 1, "warm get should target the cached owner");
        let (hits, _) = c.store(0).idcache_counters().unwrap();
        assert!(hits >= 1);
        consumer.release(id).unwrap();
    }

    #[test]
    fn direct_id_cache_skips_rpc_but_does_not_pin() {
        let mut cfg = ClusterConfig::functional(2, 4 << 20);
        cfg.id_cache = Some((CacheMode::Direct, 1024));
        let c = Cluster::launch(cfg).unwrap();
        let producer = c.client(0).unwrap();
        let consumer = c.client(1).unwrap();
        let id = ObjectId::from_name("direct");
        producer.put(id, b"zoom", &[]).unwrap();

        let _ = consumer.get_one(id, Duration::from_secs(1)).unwrap();
        consumer.release(id).unwrap();
        let rpcs_after_cold = c.store(1).disagg_stats().lookup_rpcs;

        let buf = consumer.get_one(id, Duration::from_secs(1)).unwrap();
        assert_eq!(c.store(1).disagg_stats().lookup_rpcs, rpcs_after_cold);
        assert_eq!(c.store(1).disagg_stats().direct_cache_reads, 1);
        // No pin was taken — the hazard the paper warns about.
        assert_eq!(c.store(0).remote_pin_count(), 0);
        assert_eq!(buf.read_all().unwrap(), b"zoom");
        consumer.release(id).unwrap();
    }

    #[test]
    fn rack_scale_all_pairs_share() {
        let c = Cluster::launch(ClusterConfig::functional(5, 4 << 20)).unwrap();
        let clients: Vec<_> = (0..5).map(|i| c.client(i).unwrap()).collect();
        let ids: Vec<ObjectId> = (0..5)
            .map(|i| ObjectId::from_name(&c.owned_id(i, &format!("from-{i}"))))
            .collect();
        for (i, client) in clients.iter().enumerate() {
            client
                .put(ids[i], format!("payload-{i}").as_bytes(), &[])
                .unwrap();
        }
        for (j, client) in clients.iter().enumerate() {
            for (i, &id) in ids.iter().enumerate() {
                let buf = client.get_one(id, Duration::from_secs(2)).unwrap();
                assert_eq!(buf.read_all().unwrap(), format!("payload-{i}").as_bytes());
                let expected_path = if i == j { Path::Local } else { Path::Remote };
                assert_eq!(buf.data().path(), expected_path);
                client.release(id).unwrap();
            }
        }
    }

    #[test]
    fn migration_moves_object_and_flips_read_path() {
        let c = two_nodes();
        let producer = c.client(0).unwrap();
        let consumer = c.client(1).unwrap();
        let id = ObjectId::from_name(&c.owned_id(0, "hot-object"));
        let payload = vec![0xC3; 64 << 10];
        producer.put(id, &payload, b"hot-meta").unwrap();

        // Before migration: consumer reads remotely.
        let buf = consumer.get_one(id, Duration::from_secs(1)).unwrap();
        assert_eq!(buf.data().path(), Path::Remote);
        consumer.release(id).unwrap();

        // Migrate to node 1's store.
        let loc = c
            .store(1)
            .migrate_to_local(id, Duration::from_secs(5))
            .unwrap();
        assert_eq!(loc.seg.owner, c.node_id(1));

        // After migration: local path, data + metadata intact, owner copy
        // gone.
        let buf = consumer.get_one(id, Duration::from_secs(1)).unwrap();
        assert_eq!(buf.data().path(), Path::Local);
        assert_eq!(buf.read_all().unwrap(), payload);
        assert_eq!(buf.metadata().read_all().unwrap(), b"hot-meta");
        consumer.release(id).unwrap();
        assert!(!c.store(0).core().contains(id));
        // Idempotent: migrating again is a no-op.
        let again = c
            .store(1)
            .migrate_to_local(id, Duration::from_secs(1))
            .unwrap();
        assert_eq!(again.seg.owner, c.node_id(1));
    }

    #[test]
    fn migration_aborts_cleanly_when_object_is_in_use() {
        let c = two_nodes();
        let producer = c.client(0).unwrap();
        let id = ObjectId::from_name(&c.owned_id(0, "busy-object"));
        producer.put(id, &[7; 1024], &[]).unwrap();
        // A reader on node 0 pins the owner's copy.
        let pin = producer.get_one(id, Duration::from_secs(1)).unwrap();

        let err = c
            .store(1)
            .migrate_to_local(id, Duration::from_secs(5))
            .unwrap_err();
        assert_eq!(err, PlasmaError::ObjectInUse(id));
        // Nothing changed: owner still serves it; node 1 has no copy.
        assert!(c.store(0).core().contains(id));
        assert!(!c.store(1).core().exists_any_state(id));
        assert_eq!(pin.read_all().unwrap(), vec![7; 1024]);
        producer.release(id).unwrap();
    }

    #[test]
    fn global_list_covers_all_nodes() {
        let c = Cluster::launch(ClusterConfig::functional(3, 4 << 20)).unwrap();
        for i in 0..3 {
            let client = c.client(i).unwrap();
            for j in 0..(i + 1) {
                let id = ObjectId::from_name(&c.owned_id(i, &format!("inv/{i}/{j}")));
                client.put(id, &[0; 100], &[]).unwrap();
            }
        }
        let inventory = c.store(0).global_list().unwrap();
        assert_eq!(inventory.len(), 3);
        let mut counts: Vec<usize> = inventory.iter().map(|(_, e)| e.len()).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2, 3]);
        let total_bytes: u64 = inventory
            .iter()
            .flat_map(|(_, e)| e.iter().map(|x| x.data_size))
            .sum();
        assert_eq!(total_bytes, 600);
    }

    #[test]
    fn direct_cache_hazard_serves_stale_bytes_after_delete() {
        // The corruption scenario the paper warns about for unmanaged
        // caching: a Direct-mode cache keeps serving a location after the
        // owner deleted the object and reused its memory.
        let mut cfg = ClusterConfig::functional(2, 1 << 20);
        cfg.id_cache = Some((CacheMode::Direct, 64));
        let c = Cluster::launch(cfg).unwrap();
        let producer = c.client(0).unwrap();
        let consumer = c.client(1).unwrap();

        let victim = ObjectId::from_name(&c.owned_id(0, "victim"));
        producer.put(victim, &[0xAA; 1000], &[]).unwrap();
        // Warm the consumer's direct cache.
        let buf = consumer.get_one(victim, Duration::from_secs(1)).unwrap();
        assert!(buf.read_all().unwrap().iter().all(|&b| b == 0xAA));
        consumer.release(victim).unwrap();

        // Owner deletes the object and a new object reuses the region.
        producer.delete(victim).unwrap();
        let squatter = ObjectId::from_name(&c.owned_id(0, "squatter"));
        producer.put(squatter, &[0xBB; 1000], &[]).unwrap();

        // The consumer's cached get still "succeeds" — and reads the
        // squatter's bytes. No pin, no validation: silent corruption.
        let stale = consumer.get_one(victim, Duration::from_secs(1)).unwrap();
        let bytes = stale.read_all().unwrap();
        assert!(
            bytes.iter().all(|&b| b == 0xBB),
            "direct cache must expose the reused memory (the documented hazard)"
        );
        assert_eq!(c.store(1).disagg_stats().direct_cache_reads, 1);
    }

    #[test]
    fn get_times_out_when_object_is_nowhere() {
        let c = two_nodes();
        let client = c.client(0).unwrap();
        let id = ObjectId::from_name("nowhere");
        let out = client.get(&[id], Duration::from_millis(40)).unwrap();
        assert!(out[0].is_none());
    }

    #[test]
    fn batch_get_mixes_local_and_remote() {
        let c = two_nodes();
        let a = c.client(0).unwrap();
        let b = c.client(1).unwrap();
        let local = ObjectId::from_name(&c.owned_id(1, "on-1"));
        let remote = ObjectId::from_name(&c.owned_id(0, "on-0"));
        b.put(local, b"local-data", &[]).unwrap();
        a.put(remote, b"remote-data", &[]).unwrap();
        let got = b.get(&[local, remote], Duration::from_secs(1)).unwrap();
        let bufs: Vec<_> = got.into_iter().flatten().collect();
        assert_eq!(bufs.len(), 2);
        assert_eq!(bufs[0].read_all().unwrap(), b"local-data");
        assert_eq!(bufs[1].read_all().unwrap(), b"remote-data");
        assert_eq!(bufs[0].data().path(), Path::Local);
        assert_eq!(bufs[1].data().path(), Path::Remote);
    }

    #[test]
    fn unavailable_peer_surfaces_as_peer_unavailable_on_create() {
        use plasma::{StoreConfig, StoreCore};
        use rpclite::{Status, StatusCode};
        use std::sync::Arc;

        let fabric = tfsim::Fabric::virtual_thymesisflow();
        let node = fabric.register_node();
        let core = StoreCore::new(&fabric, node, StoreConfig::new("lonely", 1 << 20)).unwrap();
        let store = DisaggStore::new(core, DisaggConfig::default());

        // A peer whose service always fails (stand-in for an unreachable
        // or crashing store).
        let hub = ipc::InprocHub::new();
        let listener = hub.bind("dead-peer").unwrap();
        let svc = Arc::new(
            |_m: u32, _b: bytes::Bytes| -> Result<bytes::Bytes, Status> {
                Err(Status::new(StatusCode::Unavailable, "peer down"))
            },
        );
        let _srv = rpclite::serve(Box::new(listener), svc);
        store.add_peer(Peer {
            node: tfsim::NodeId(99),
            name: "dead".into(),
            client: Arc::new(rpclite::RpcClient::new(Box::new(
                hub.connect("dead-peer").unwrap(),
            ))),
        });

        // Strict uniqueness: if a peer cannot confirm the reservation, the
        // create fails with the typed unavailability error rather than
        // risking a duplicate id.
        let err = plasma::ObjectStore::create(&store, ObjectId::from_name("x"), 8, 0).unwrap_err();
        assert!(matches!(err, PlasmaError::PeerUnavailable(_)), "{err:?}");
        // The failed create left no residue: a later local-only create of
        // the same id works once the peer is removed from the quorum.
        assert!(!store.core().exists_any_state(ObjectId::from_name("x")));
    }

    #[test]
    fn interconnect_thread_and_local_clients_share_the_store_safely() {
        // The paper's §IV thread-safety concern: the store's main servicing
        // path and the RPC server thread access the object table
        // concurrently. Hammer both sides at once.
        let c = two_nodes();
        let local = c.store(0).clone();
        let remote_client = c.client(1).unwrap();

        std::thread::scope(|s| {
            // Local churn on store 0 (the "main thread").
            s.spawn(move || {
                for i in 0..200u32 {
                    let id = ObjectId::from_name(&format!("churn/{i}"));
                    let loc = local.core().create(id, 64, 0).unwrap();
                    let map = local.core().local_mapping().unwrap();
                    map.write_at(loc.offset, &[i as u8; 64]).unwrap();
                    local.core().seal(id).unwrap();
                    local.core().release(id).unwrap();
                }
            });
            // Remote lookups hitting store 0's interconnect service.
            s.spawn(move || {
                for i in 0..200u32 {
                    let id = ObjectId::from_name(&format!("churn/{i}"));
                    let buf = remote_client.get_one(id, Duration::from_secs(30)).unwrap();
                    assert!(buf.read_all().unwrap().iter().all(|&b| b == i as u8));
                    remote_client.release(id).unwrap();
                }
            });
        });
        assert_eq!(c.store(0).remote_pin_count(), 0, "all remote pins released");
    }

    #[test]
    fn concurrent_create_same_id_yields_one_winner() {
        // Drive the reservation race deterministically through the store
        // API on both nodes concurrently, many rounds.
        let c = two_nodes();
        let s0 = c.store(0).clone();
        let s1 = c.store(1).clone();
        for round in 0..20 {
            let id = ObjectId::from_name(&format!("race-{round}"));
            let (r0, r1) = std::thread::scope(|scope| {
                let t0 = scope.spawn(|| s0.create(id, 8, 0));
                let t1 = scope.spawn(|| s1.create(id, 8, 0));
                (t0.join().unwrap(), t1.join().unwrap())
            });
            let winners = [&r0, &r1].iter().filter(|r| r.is_ok()).count();
            assert_eq!(winners, 1, "round {round}: {r0:?} vs {r1:?}");
            // Clean up for the next round.
            let winner = if r0.is_ok() { &s0 } else { &s1 };
            winner.abort(id).unwrap();
        }
    }
}
