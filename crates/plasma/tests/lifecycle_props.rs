//! Property-based lifecycle tests of the store engine against a reference
//! model: reference counting, eviction safety, deferred deletion, and
//! allocator bookkeeping must stay consistent under arbitrary operation
//! sequences, for every allocator kind.

use plasma::{AllocatorKind, ObjectId, PlasmaError, StoreConfig, StoreCore};
use proptest::prelude::*;
use std::collections::HashMap;
use tfsim::Fabric;

const CAPACITY: usize = 1 << 20;

#[derive(Debug, Clone, Copy)]
enum Op {
    Create { name: u8, size: u16 },
    Seal { name: u8 },
    Get { name: u8 },
    Release { name: u8 },
    Delete { name: u8 },
    DeleteDeferred { name: u8 },
    Abort { name: u8 },
    Evict { bytes: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let name = any::<u8>().prop_map(|n| n % 12);
    prop_oneof![
        (name.clone(), 1..8192u16).prop_map(|(name, size)| Op::Create { name, size }),
        name.clone().prop_map(|name| Op::Seal { name }),
        name.clone().prop_map(|name| Op::Get { name }),
        name.clone().prop_map(|name| Op::Release { name }),
        name.clone().prop_map(|name| Op::Delete { name }),
        name.clone().prop_map(|name| Op::DeleteDeferred { name }),
        name.prop_map(|name| Op::Abort { name }),
        (1..8192u16).prop_map(|bytes| Op::Evict { bytes }),
    ]
}

fn oid(name: u8) -> ObjectId {
    ObjectId::from_bytes([name; 20])
}

/// Reference model of one object.
#[derive(Debug, Clone, Copy)]
struct ModelObj {
    size: u16,
    sealed: bool,
    refs: u64,
    doomed: bool,
}

fn run(kind: AllocatorKind, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let fabric = Fabric::virtual_thymesisflow();
    let node = fabric.register_node();
    let mut cfg = StoreConfig::new("prop", CAPACITY);
    cfg.allocator = kind;
    cfg.enable_eviction = false; // keep the model deterministic
    let store = StoreCore::new(&fabric, node, cfg).unwrap();
    let mut model: HashMap<u8, ModelObj> = HashMap::new();

    for op in ops {
        match op {
            Op::Create { name, size } => {
                let r = store.create(oid(name), u64::from(size), 0);
                if let std::collections::hash_map::Entry::Vacant(slot) = model.entry(name) {
                    match r {
                        Ok(_) => {
                            slot.insert(ModelObj {
                                size,
                                sealed: false,
                                refs: 1,
                                doomed: false,
                            });
                        }
                        Err(PlasmaError::OutOfMemory { .. }) => {} // store full; model unchanged
                        Err(e) => prop_assert!(false, "unexpected create error {e:?}"),
                    }
                } else {
                    prop_assert_eq!(r.unwrap_err(), PlasmaError::ObjectExists(oid(name)));
                }
            }
            Op::Seal { name } => {
                let r = store.seal(oid(name));
                match model.get_mut(&name) {
                    Some(m) if !m.sealed => {
                        r.unwrap();
                        m.sealed = true;
                    }
                    Some(_) => {
                        prop_assert_eq!(r.unwrap_err(), PlasmaError::AlreadySealed(oid(name)))
                    }
                    None => prop_assert_eq!(r.unwrap_err(), PlasmaError::ObjectNotFound(oid(name))),
                }
            }
            Op::Get { name } => {
                let r = store.get_local(oid(name));
                match model.get_mut(&name) {
                    Some(m) if m.sealed && !m.doomed => {
                        let loc = r.expect("model says gettable");
                        prop_assert_eq!(loc.data_size, u64::from(m.size));
                        m.refs += 1;
                    }
                    _ => prop_assert!(r.is_none(), "unsealed/doomed/missing must miss"),
                }
            }
            Op::Release { name } => {
                let r = store.release(oid(name));
                match model.get_mut(&name) {
                    Some(m) if m.refs > 0 => {
                        r.unwrap();
                        m.refs -= 1;
                        if m.refs == 0 && m.doomed && m.sealed {
                            model.remove(&name);
                        }
                    }
                    Some(_) => {
                        prop_assert_eq!(r.unwrap_err(), PlasmaError::NotReferenced(oid(name)))
                    }
                    None => prop_assert_eq!(r.unwrap_err(), PlasmaError::ObjectNotFound(oid(name))),
                }
            }
            Op::Delete { name } => {
                let r = store.delete(oid(name));
                match model.get(&name) {
                    Some(m) if m.refs > 0 => {
                        prop_assert_eq!(r.unwrap_err(), PlasmaError::ObjectInUse(oid(name)))
                    }
                    Some(m) if !m.sealed => {
                        prop_assert_eq!(r.unwrap_err(), PlasmaError::NotSealed(oid(name)))
                    }
                    Some(_) => {
                        r.unwrap();
                        model.remove(&name);
                    }
                    None => prop_assert_eq!(r.unwrap_err(), PlasmaError::ObjectNotFound(oid(name))),
                }
            }
            Op::DeleteDeferred { name } => {
                let r = store.delete_deferred(oid(name));
                match model.get_mut(&name) {
                    Some(m) if !m.sealed => {
                        prop_assert_eq!(r.unwrap_err(), PlasmaError::NotSealed(oid(name)))
                    }
                    Some(m) if m.refs == 0 => {
                        prop_assert!(r.unwrap(), "unreferenced deletes immediately");
                        model.remove(&name);
                    }
                    Some(m) => {
                        prop_assert!(!r.unwrap(), "referenced deletes defer");
                        m.doomed = true;
                    }
                    None => prop_assert_eq!(r.unwrap_err(), PlasmaError::ObjectNotFound(oid(name))),
                }
            }
            Op::Abort { name } => {
                let r = store.abort(oid(name));
                match model.get(&name) {
                    Some(m) if !m.sealed => {
                        r.unwrap();
                        model.remove(&name);
                    }
                    Some(_) => {
                        prop_assert_eq!(r.unwrap_err(), PlasmaError::AlreadySealed(oid(name)))
                    }
                    None => prop_assert_eq!(r.unwrap_err(), PlasmaError::ObjectNotFound(oid(name))),
                }
            }
            Op::Evict { bytes } => {
                // Eviction may only reclaim sealed, unreferenced,
                // non-doomed objects — but which ones is LRU-policy
                // internal; reconcile the model from the store.
                let _ = store.evict(u64::from(bytes));
                model.retain(|&name, m| {
                    let still = store.exists_any_state(oid(name));
                    if !still {
                        // Only evictable objects may disappear.
                        assert_eq!(m.refs, 0, "evicted a referenced object");
                        assert!(m.sealed, "evicted an unsealed object");
                    }
                    still
                });
            }
        }

        // Global invariants after every step.
        let stats = store.stats();
        prop_assert_eq!(stats.objects as usize, model.len());
        let model_bytes: u64 = model.values().map(|m| u64::from(m.size)).sum();
        prop_assert!(
            stats.allocated_bytes >= model_bytes,
            "allocator lost bytes: {} < {}",
            stats.allocated_bytes,
            model_bytes
        );
    }

    // Drain: release all refs, then everything is deletable and the
    // allocator returns to zero.
    let names: Vec<u8> = model.keys().copied().collect();
    for name in names {
        let m = model[&name];
        for _ in 0..m.refs {
            store.release(oid(name)).unwrap();
        }
        if m.doomed && m.refs > 0 {
            // Deferred deletion completed on last release.
        } else if !m.sealed {
            store.abort(oid(name)).unwrap();
        } else if !m.doomed {
            store.delete(oid(name)).unwrap();
        }
    }
    prop_assert_eq!(store.stats().allocated_bytes, 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn lifecycle_model_size_map(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run(AllocatorKind::SizeMap, ops)?;
    }

    #[test]
    fn lifecycle_model_first_fit(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run(AllocatorKind::FirstFit, ops)?;
    }

    #[test]
    fn lifecycle_model_dlseg(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run(AllocatorKind::DlSeg, ops)?;
    }

    #[test]
    fn lifecycle_model_buddy(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run(AllocatorKind::Buddy, ops)?;
    }

    #[test]
    fn lifecycle_model_slab(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run(AllocatorKind::Slab, ops)?;
    }
}
