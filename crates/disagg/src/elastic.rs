//! Elastic capacity tier: pressure model, borrow ledger, heat tracking.
//!
//! Three small mechanisms that together let a node's effective capacity
//! stretch across the cluster:
//!
//! * **Pressure-driven spill** — a node above its high watermark pushes
//!   cold sealed objects (the LRU tail) to the peer advertising the most
//!   free bytes, running the migration machinery *in reverse*: the lender
//!   seals a replica before the owner deletes, so a lost response can
//!   duplicate an immutable object but never lose it.
//! * **Borrow ledger** — both ends record the delegation. The ring owner
//!   keeps a `lent` entry so `get`s routed to it answer with a one-hop
//!   `Moved` redirect; the holder keeps a `borrowed` entry so quiesce
//!   reconciliation can prove no delegation is orphaned.
//! * **Heat tracking** — owners count remote hits per (object, reader)
//!   and push sufficiently hot objects *toward* their dominant reader
//!   (rebalance), turning remote reads into local ones.
//!
//! Admission control rides the same config: a bounded number of in-flight
//! (created-but-unsealed) objects per node, beyond which `create` sheds
//! load with [`plasma::PlasmaError::Overloaded`] instead of collapsing.

use parking_lot::Mutex;
use plasma::ObjectId;
use std::collections::{HashMap, HashSet};
use tfsim::NodeId;

/// Tuning knobs for the elastic capacity tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElasticConfig {
    /// Local occupancy (parts-per-million of capacity) above which
    /// [`maybe_spill`](crate::DisaggStore::maybe_spill) starts pushing
    /// cold objects to lenders.
    pub high_watermark_ppm: u64,
    /// Spilling stops once occupancy drops to this level.
    pub low_watermark_ppm: u64,
    /// A lender refuses to adopt an object that would push its own
    /// occupancy above this level — pressure must never cascade.
    pub lend_headroom_ppm: u64,
    /// Most objects examined per spill pass (bounds pass latency).
    pub max_spill_batch: usize,
    /// Most in-flight (created, not yet sealed) objects admitted before
    /// `create` sheds load with `Overloaded`. `0` disables admission
    /// control.
    pub max_inflight_creates: u64,
    /// Backoff hint carried by `Overloaded` rejections, milliseconds.
    pub retry_after_ms: u64,
    /// Remote hits from one reader before a rebalance pass considers the
    /// object hot enough to move toward that reader.
    pub heat_min_hits: u32,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            high_watermark_ppm: 850_000,
            low_watermark_ppm: 700_000,
            lend_headroom_ppm: 600_000,
            max_spill_batch: 32,
            max_inflight_creates: 0,
            retry_after_ms: 25,
            heat_min_hits: 8,
        }
    }
}

/// One recorded delegation: the remote end of a spilled object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Delegation {
    /// The other node: the holder for a `lent` entry, the owner for a
    /// `borrowed` entry.
    peer: NodeId,
    /// Object size (data + metadata), for spilled-bytes accounting.
    bytes: u64,
}

#[derive(Debug, Default)]
struct LedgerState {
    /// Owner side: objects this node delegated away, by holder.
    lent: HashMap<ObjectId, Delegation>,
    /// Holder side: objects this node adopted, by owner.
    borrowed: HashMap<ObjectId, Delegation>,
}

/// Aggregate ledger occupancy, for gauges and quiesce audits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerCounts {
    /// Number of objects this node has lent out.
    pub lent: u64,
    /// Total bytes this node has lent out (its "spilled" footprint).
    pub lent_bytes: u64,
    /// Number of objects this node holds on behalf of owners.
    pub borrowed: u64,
    /// Total bytes held on behalf of owners.
    pub borrowed_bytes: u64,
}

/// Both ends of every delegation this node participates in.
///
/// The owner records `lent` entries when a spill is acknowledged; the
/// holder records `borrowed` entries when it seals the replica. The two
/// maps are disjoint in steady state (a node never borrows its own
/// objects), and quiesce reconciliation proves every entry has its
/// matching counterpart on the other node.
#[derive(Debug, Default)]
pub struct BorrowLedger {
    state: Mutex<LedgerState>,
}

impl BorrowLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record (owner side) that `id` is now held by `holder`.
    pub fn record_lent(&self, id: ObjectId, holder: NodeId, bytes: u64) {
        self.state.lock().lent.insert(
            id,
            Delegation {
                peer: holder,
                bytes,
            },
        );
    }

    /// The holder of `id`, if this node lent it out.
    pub fn lent_holder(&self, id: ObjectId) -> Option<NodeId> {
        self.state.lock().lent.get(&id).map(|d| d.peer)
    }

    /// The recorded size of a lent entry, if any — used to preserve byte
    /// accounting when reconciliation re-installs a delegation.
    pub fn lent_bytes(&self, id: ObjectId) -> Option<u64> {
        self.state.lock().lent.get(&id).map(|d| d.bytes)
    }

    /// Erase the owner-side entry for `id` (delegation ended).
    pub fn remove_lent(&self, id: ObjectId) -> bool {
        self.state.lock().lent.remove(&id).is_some()
    }

    /// Record (holder side) that `id` is held here for `owner`.
    pub fn record_borrowed(&self, id: ObjectId, owner: NodeId, bytes: u64) {
        self.state
            .lock()
            .borrowed
            .insert(id, Delegation { peer: owner, bytes });
    }

    /// The owner of `id`, if this node borrowed it.
    pub fn borrowed_owner(&self, id: ObjectId) -> Option<NodeId> {
        self.state.lock().borrowed.get(&id).map(|d| d.peer)
    }

    /// Erase the holder-side entry for `id` (replica dropped or deleted).
    pub fn remove_borrowed(&self, id: ObjectId) -> bool {
        self.state.lock().borrowed.remove(&id).is_some()
    }

    /// Every id this node borrows from `owner` (one reconcile report).
    pub fn borrowed_from(&self, owner: NodeId) -> Vec<ObjectId> {
        self.state
            .lock()
            .borrowed
            .iter()
            .filter(|(_, d)| d.peer == owner)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Owner-side trim: drop every lent entry toward `holder` whose id is
    /// not in `reported` (the holder no longer honors it). Returns how
    /// many entries were dropped.
    pub fn trim_lent(&self, holder: NodeId, reported: &HashSet<ObjectId>) -> u64 {
        let mut st = self.state.lock();
        let before = st.lent.len();
        st.lent
            .retain(|id, d| d.peer != holder || reported.contains(id));
        (before - st.lent.len()) as u64
    }

    /// Owner-side view: every `(id, holder)` pair currently lent.
    pub fn lent_snapshot(&self) -> Vec<(ObjectId, NodeId)> {
        self.state
            .lock()
            .lent
            .iter()
            .map(|(id, d)| (*id, d.peer))
            .collect()
    }

    /// Holder-side view: every `(id, owner)` pair currently borrowed.
    pub fn borrowed_snapshot(&self) -> Vec<(ObjectId, NodeId)> {
        self.state
            .lock()
            .borrowed
            .iter()
            .map(|(id, d)| (*id, d.peer))
            .collect()
    }

    /// Aggregate counts and byte totals (gauge sync, audits).
    pub fn counts(&self) -> LedgerCounts {
        let st = self.state.lock();
        LedgerCounts {
            lent: st.lent.len() as u64,
            lent_bytes: st.lent.values().map(|d| d.bytes).sum(),
            borrowed: st.borrowed.len() as u64,
            borrowed_bytes: st.borrowed.values().map(|d| d.bytes).sum(),
        }
    }
}

/// Owner-side remote-hit accounting: how many times each remote reader
/// fetched each object, so rebalancing can move hot objects toward their
/// dominant consumer. Complements the aggregate
/// `disagg.get.remote_hit.latency_ns` histogram with the per-object
/// attribution that histogram cannot carry.
#[derive(Debug, Default)]
pub struct HeatMap {
    state: Mutex<HashMap<ObjectId, HashMap<NodeId, u32>>>,
}

impl HeatMap {
    /// An empty heat map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count one remote hit on `id` by `reader`.
    pub fn record(&self, id: ObjectId, reader: NodeId) {
        *self
            .state
            .lock()
            .entry(id)
            .or_default()
            .entry(reader)
            .or_insert(0) += 1;
    }

    /// The hottest reader of `id` and its hit count, if any.
    pub fn hottest(&self, id: ObjectId) -> Option<(NodeId, u32)> {
        self.state.lock().get(&id).and_then(|readers| {
            // Deterministic tie-break: lowest node id wins.
            readers
                .iter()
                .max_by_key(|(node, hits)| (**hits, std::cmp::Reverse(node.0)))
                .map(|(node, hits)| (*node, *hits))
        })
    }

    /// Drain every object whose hottest reader reached `min_hits`,
    /// returning `(id, reader, hits)` triples. Drained objects restart
    /// cold; objects below the threshold keep accumulating.
    pub fn drain_hot(&self, min_hits: u32) -> Vec<(ObjectId, NodeId, u32)> {
        let mut st = self.state.lock();
        let hot: Vec<(ObjectId, NodeId, u32)> = st
            .iter()
            .filter_map(|(id, readers)| {
                readers
                    .iter()
                    .max_by_key(|(node, hits)| (**hits, std::cmp::Reverse(node.0)))
                    .filter(|(_, hits)| **hits >= min_hits)
                    .map(|(node, hits)| (*id, *node, *hits))
            })
            .collect();
        let mut out = hot;
        out.sort_by_key(|(id, _, _)| *id);
        for (id, _, _) in &out {
            st.remove(id);
        }
        out
    }

    /// Forget everything recorded about `id` (deleted or already moved).
    pub fn clear(&self, id: ObjectId) {
        self.state.lock().remove(&id);
    }

    /// Number of objects currently tracked.
    pub fn len(&self) -> usize {
        self.state.lock().len()
    }

    /// True when no object has recorded heat.
    pub fn is_empty(&self) -> bool {
        self.state.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> ObjectId {
        ObjectId::from_bytes([n; 20])
    }

    #[test]
    fn ledger_tracks_both_sides() {
        let ledger = BorrowLedger::new();
        ledger.record_lent(id(1), NodeId(2), 100);
        ledger.record_borrowed(id(9), NodeId(7), 40);

        assert_eq!(ledger.lent_holder(id(1)), Some(NodeId(2)));
        assert_eq!(ledger.lent_holder(id(9)), None);
        assert_eq!(ledger.borrowed_owner(id(9)), Some(NodeId(7)));
        assert_eq!(ledger.borrowed_from(NodeId(7)), vec![id(9)]);
        assert!(ledger.borrowed_from(NodeId(2)).is_empty());

        let counts = ledger.counts();
        assert_eq!(counts.lent, 1);
        assert_eq!(counts.lent_bytes, 100);
        assert_eq!(counts.borrowed, 1);
        assert_eq!(counts.borrowed_bytes, 40);

        assert!(ledger.remove_lent(id(1)));
        assert!(!ledger.remove_lent(id(1)));
        assert!(ledger.remove_borrowed(id(9)));
        assert_eq!(ledger.counts(), LedgerCounts::default());
    }

    #[test]
    fn trim_lent_drops_only_unreported_entries_of_that_holder() {
        let ledger = BorrowLedger::new();
        ledger.record_lent(id(1), NodeId(2), 10);
        ledger.record_lent(id(2), NodeId(2), 10);
        ledger.record_lent(id(3), NodeId(5), 10);

        let reported: HashSet<ObjectId> = [id(1)].into_iter().collect();
        assert_eq!(ledger.trim_lent(NodeId(2), &reported), 1);
        assert_eq!(ledger.lent_holder(id(1)), Some(NodeId(2)));
        assert_eq!(ledger.lent_holder(id(2)), None, "unreported: trimmed");
        assert_eq!(
            ledger.lent_holder(id(3)),
            Some(NodeId(5)),
            "other holder untouched"
        );
    }

    #[test]
    fn heat_map_finds_dominant_reader() {
        let heat = HeatMap::new();
        for _ in 0..3 {
            heat.record(id(1), NodeId(4));
        }
        heat.record(id(1), NodeId(9));
        assert_eq!(heat.hottest(id(1)), Some((NodeId(4), 3)));
        assert_eq!(heat.hottest(id(2)), None);
    }

    #[test]
    fn heat_ties_break_to_lowest_node() {
        let heat = HeatMap::new();
        heat.record(id(1), NodeId(9));
        heat.record(id(1), NodeId(3));
        assert_eq!(heat.hottest(id(1)), Some((NodeId(3), 1)));
    }

    #[test]
    fn drain_hot_removes_only_objects_over_threshold() {
        let heat = HeatMap::new();
        for _ in 0..5 {
            heat.record(id(1), NodeId(2));
        }
        heat.record(id(2), NodeId(3));
        let hot = heat.drain_hot(4);
        assert_eq!(hot, vec![(id(1), NodeId(2), 5)]);
        assert_eq!(heat.len(), 1, "cold object keeps accumulating");
        assert_eq!(heat.hottest(id(2)), Some((NodeId(3), 1)));
        assert!(heat.drain_hot(4).is_empty(), "drained objects restart cold");
    }

    #[test]
    fn config_default_disables_admission_only() {
        let cfg = ElasticConfig::default();
        assert_eq!(cfg.max_inflight_creates, 0, "admission off by default");
        assert!(cfg.low_watermark_ppm < cfg.high_watermark_ppm);
        assert!(cfg.lend_headroom_ppm < cfg.low_watermark_ppm);
    }
}
