//! Store-side observability report appended to the figure harnesses.
//!
//! The figures time the *client* side on the simulation clock; this
//! report adds the *store* side from the obs registries — the same
//! snapshots any node can fetch from any peer over the `METRICS`
//! interconnect verb. Store-side latencies are wall-clock nanoseconds of
//! harness execution (the hot paths record real elapsed time), so they
//! complement, not replace, the modeled client timings: use them to see
//! where requests spend time inside the store, not to compare against
//! the paper's testbed numbers.

use crate::measure::render_table;
use disagg::Cluster;
use obs::MetricsSnapshot;

/// The store-side histograms worth a row in a figure report, with the
/// label shown in the table.
const REPORT_HISTOGRAMS: &[(&str, &str)] = &[
    ("disagg.get.local_hit.latency_ns", "get (local hit)"),
    ("disagg.get.remote_hit.latency_ns", "get (remote hit)"),
    ("disagg.get.miss.latency_ns", "get (miss)"),
    ("disagg.lookup.fanout.latency_ns", "remote lookup fan-out"),
    ("disagg.create.latency_ns", "create (disagg)"),
    ("plasma.create.latency_ns", "create (plasma core)"),
    ("plasma.seal.latency_ns", "seal"),
    ("plasma.get.latency_ns", "get (plasma core)"),
    ("plasma.release.latency_ns", "release"),
];

fn us(ns: u64) -> String {
    format!("{:.1}", ns as f64 / 1e3)
}

/// Render the merged store-side latency table for a finished run:
/// one row per instrumented operation that actually recorded samples,
/// p50/p90/p99/max in microseconds.
pub fn render_store_side(merged: &MetricsSnapshot) -> String {
    let mut rows = Vec::new();
    for (name, label) in REPORT_HISTOGRAMS {
        let Some(h) = merged.histogram(name) else {
            continue;
        };
        if h.count == 0 {
            continue;
        }
        rows.push(vec![
            (*label).to_string(),
            h.count.to_string(),
            us(h.p50()),
            us(h.p90()),
            us(h.p99()),
            us(h.max),
        ]);
    }
    if rows.is_empty() {
        return "  (no store-side samples recorded)\n".to_string();
    }
    render_table(
        &["store-side op", "count", "p50 (µs)", "p90", "p99", "max"],
        &rows,
    )
}

/// Fetch every node's snapshot over the interconnect (partial if a peer
/// is unreachable), merge, and render. Printed *after* the existing
/// figure output so no established field changes.
pub fn print_store_side(cluster: &Cluster) {
    match cluster.store(0).merged_cluster_metrics() {
        Ok(merged) => {
            println!("\nStore-side service time (merged across nodes, wall-clock):");
            print!("{}", render_store_side(&merged));
        }
        Err(e) => eprintln!("store-side metrics unavailable: {e:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::Histogram;

    #[test]
    fn report_skips_absent_and_empty_histograms() {
        let mut snap = MetricsSnapshot::default();
        let empty = Histogram::new();
        snap.histograms
            .insert("plasma.get.latency_ns".into(), empty.snapshot());
        let live = Histogram::new();
        live.record(1_500);
        live.record(2_500);
        snap.histograms
            .insert("plasma.create.latency_ns".into(), live.snapshot());

        let table = render_store_side(&snap);
        assert!(table.contains("create (plasma core)"), "{table}");
        assert!(!table.contains("get (plasma core)"), "{table}");
        // Two samples, microsecond scaling applied.
        let row: Vec<&str> = table
            .lines()
            .find(|l| l.contains("create (plasma core)"))
            .unwrap()
            .split_whitespace()
            .collect();
        assert!(row.contains(&"2"), "{row:?}");
    }

    #[test]
    fn report_on_empty_snapshot_says_so() {
        let snap = MetricsSnapshot::default();
        assert!(render_store_side(&snap).contains("no store-side samples"));
    }
}
