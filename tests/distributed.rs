//! End-to-end integration tests across tfsim + plasma + disagg, including
//! the real Unix-domain-socket transport the original Plasma uses.

use disagg::{Cluster, ClusterConfig};
use memdis::plasma::{
    serve_store, ObjectId, ObjectStore, PlasmaClient, PlasmaError, StoreConfig, StoreCore,
};
use std::sync::Arc;
use std::time::Duration;
use tfsim::{Fabric, Path};

#[test]
fn plasma_over_real_unix_sockets() {
    // The paper's stock deployment: store and client in separate
    // "processes" talking over a Unix domain socket.
    let fabric = Fabric::virtual_thymesisflow();
    let node = fabric.register_node();
    let store = StoreCore::new(&fabric, node, StoreConfig::new("uds-store", 8 << 20)).unwrap();
    let mut path = std::env::temp_dir();
    path.push(format!("memdis-it-{}.sock", std::process::id()));
    let listener = ipc::UdsListener::bind(&path).unwrap();
    let _server = serve_store(Box::new(listener), Arc::new(store.clone()));

    let conn = ipc::UdsConn::connect(&path).unwrap();
    let client = PlasmaClient::new(Box::new(conn), fabric.clone(), node);

    let id = ObjectId::from_name("uds/object");
    client.put(id, &vec![0x42; 100_000], b"uds-meta").unwrap();
    let buf = client.get_one(id, Duration::from_secs(5)).unwrap();
    assert_eq!(buf.len(), 100_000);
    assert!(buf.read_all().unwrap().iter().all(|&b| b == 0x42));
    assert_eq!(buf.metadata().read_all().unwrap(), b"uds-meta");
    client.release(id).unwrap();
    assert_eq!(store.stats().sealed_objects, 1);
}

#[test]
fn producer_consumer_pipeline_across_nodes() {
    // A chain: node 0 produces, node 1 transforms, node 2 consumes —
    // every handoff via the disaggregated store, discovery via blocking get.
    let cluster = Cluster::launch(ClusterConfig::functional(3, 8 << 20)).unwrap();
    let stages = 20usize;

    std::thread::scope(|s| {
        let c = &cluster;
        // Stage handoffs must cross nodes for the fabric-traffic assert
        // below: pin raw objects to node 0 and cooked ones to node 1.
        // Stage 1: producer.
        s.spawn(move || {
            let client = c.client(0).unwrap();
            for i in 0..stages {
                let id = ObjectId::from_name(&c.owned_id(0, &format!("pipe/raw-{i}")));
                client.put(id, &vec![i as u8; 4096], &[]).unwrap();
            }
        });
        // Stage 2: transformer (doubles every byte, waits for stage 1).
        s.spawn(move || {
            let client = c.client(1).unwrap();
            for i in 0..stages {
                let raw = ObjectId::from_name(&c.owned_id(0, &format!("pipe/raw-{i}")));
                let buf = client.get_one(raw, Duration::from_secs(30)).unwrap();
                let data: Vec<u8> = buf.read_all().unwrap().iter().map(|b| b * 2).collect();
                client.release(raw).unwrap();
                let cooked = ObjectId::from_name(&c.owned_id(1, &format!("pipe/cooked-{i}")));
                client.put(cooked, &data, &[]).unwrap();
            }
        });
        // Stage 3: consumer (validates, waits for stage 2).
        s.spawn(move || {
            let client = c.client(2).unwrap();
            for i in 0..stages {
                let cooked = ObjectId::from_name(&c.owned_id(1, &format!("pipe/cooked-{i}")));
                let buf = client.get_one(cooked, Duration::from_secs(30)).unwrap();
                let data = buf.read_all().unwrap();
                assert!(data.iter().all(|&b| b == (i as u8) * 2), "stage {i}");
                client.release(cooked).unwrap();
            }
        });
    });

    // All data was consumed in place: fabric carried the remote reads.
    let snap = cluster.fabric().stats().snapshot();
    assert!(snap.remote_read_bytes >= (stages as u64) * 4096 * 2);
}

#[test]
fn eviction_pressure_with_remote_readers_is_safe() {
    let cluster = Cluster::launch(ClusterConfig::functional(2, 2 << 20)).unwrap();
    let producer = cluster.client(0).unwrap();
    let consumer = cluster.client(1).unwrap();

    // A stream of objects larger than the store: old ones must be evicted,
    // but never those a remote reader currently holds.
    let mut held = Vec::new();
    for i in 0..12 {
        let id = ObjectId::from_name(&format!("stream/{i}"));
        producer.put(id, &vec![i as u8; 256 << 10], &[]).unwrap();
        if i % 3 == 0 {
            let buf = consumer.get_one(id, Duration::from_secs(5)).unwrap();
            held.push((id, buf));
        }
    }
    // Everything held must still read back intact.
    for (i, (id, buf)) in held.iter().enumerate() {
        let expected = (i * 3) as u8;
        assert!(
            buf.read_all().unwrap().iter().all(|&b| b == expected),
            "{id:?} corrupted under eviction pressure"
        );
        consumer.release(*id).unwrap();
    }
    assert!(
        cluster.store(0).core().stats().evictions > 0,
        "pressure existed"
    );
}

#[test]
fn store_trait_object_is_usable_via_dyn() {
    // DisaggStore is consumed through `dyn ObjectStore` by the server; make
    // sure the trait surface stands alone too.
    let cluster = Cluster::launch(ClusterConfig::functional(2, 1 << 20)).unwrap();
    let store: Arc<dyn ObjectStore> = Arc::new(cluster.store(0).clone());
    let id = ObjectId::from_name("dyn/object");
    let loc = store.create(id, 16, 0).unwrap();
    assert_eq!(loc.data_size, 16);
    store.seal(id).unwrap();
    assert!(store.contains(id).unwrap());
    let got = store.get(&[id], Duration::from_secs(1)).unwrap();
    assert!(got[0].is_some());
    store.release(id).unwrap();
    store.release(id).unwrap(); // creator's ref
    store.delete(id).unwrap();
    assert!(!store.contains(id).unwrap());
}

#[test]
fn duplicate_ids_rejected_everywhere_in_cluster() {
    let cluster = Cluster::launch(ClusterConfig::functional(3, 1 << 20)).unwrap();
    let id = ObjectId::from_name("cluster-unique");
    cluster.client(1).unwrap().put(id, b"v", &[]).unwrap();
    for node in 0..3 {
        let err = cluster.client(node).unwrap().create(id, 1, 0).unwrap_err();
        assert_eq!(err, PlasmaError::ObjectExists(id), "node {node}");
    }
}

#[test]
fn remote_buffer_views_are_bounds_checked() {
    let cluster = Cluster::launch(ClusterConfig::functional(2, 1 << 20)).unwrap();
    let producer = cluster.client(0).unwrap();
    let consumer = cluster.client(1).unwrap();
    let id = ObjectId::from_name("bounds");
    producer.put(id, &[7; 100], &[]).unwrap();
    let buf = consumer.get_one(id, Duration::from_secs(1)).unwrap();
    assert_eq!(buf.data().path(), Path::Remote);
    let mut b = [0u8; 50];
    buf.data().read_at(50, &mut b).unwrap();
    assert!(
        buf.data().read_at(51, &mut b).is_err(),
        "read past object end"
    );
    assert!(buf.data().read_at(u64::MAX, &mut b).is_err());
    consumer.release(id).unwrap();
}

#[test]
fn store_growth_spans_segments_transparently_for_remote_readers() {
    // Stores grow by donating extra segments; clients (local and remote)
    // must follow objects into grown segments without any API change.
    let mut cfg = ClusterConfig::functional(2, 1 << 20);
    cfg.growth = Some((1 << 20, 4 << 20));
    let cluster = Cluster::launch(cfg).unwrap();
    let producer = cluster.client(0).unwrap();
    let consumer = cluster.client(1).unwrap();

    // All four land on node 0, forcing *that* store to grow.
    let ids: Vec<ObjectId> = (0..4)
        .map(|i| ObjectId::from_name(&cluster.owned_id(0, &format!("grown/{i}"))))
        .collect();
    for (i, id) in ids.iter().enumerate() {
        producer
            .put(*id, &vec![i as u8 + 1; 700 << 10], &[])
            .unwrap();
    }
    let stats = cluster.store(0).core().stats();
    assert!(stats.segments >= 3, "store must have grown: {stats:?}");
    assert_eq!(stats.evictions, 0, "growth should preempt eviction");

    // A remote consumer reads all of them, across all segments.
    let bufs = consumer.get(&ids, Duration::from_secs(10)).unwrap();
    for (i, buf) in bufs.iter().enumerate() {
        let buf = buf.as_ref().expect("object present");
        assert_eq!(buf.data().path(), Path::Remote);
        assert!(buf.read_all().unwrap().iter().all(|&b| b == i as u8 + 1));
        consumer.release(buf.id).unwrap();
    }
}

#[test]
fn deferred_delete_across_the_cluster() {
    let cluster = Cluster::launch(ClusterConfig::functional(2, 4 << 20)).unwrap();
    let producer = cluster.client(0).unwrap();
    let consumer = cluster.client(1).unwrap();
    let id = ObjectId::from_name("deferred/remote");
    producer.put(id, &[5; 2048], &[]).unwrap();

    // Remote consumer pins the object, then a *remote* deferred delete is
    // issued from node 1 (forwarded to the owner over the interconnect).
    let buf = consumer.get_one(id, Duration::from_secs(5)).unwrap();
    let deleted_now = consumer.delete_deferred(id).unwrap();
    assert!(!deleted_now, "object is pinned; deletion must defer");
    // Hidden from new gets cluster-wide, but the held buffer stays valid.
    assert!(!producer.contains(id).unwrap());
    assert!(buf.read_all().unwrap().iter().all(|&b| b == 5));
    // Releasing the pin completes the deletion at the owner.
    consumer.release(id).unwrap();
    assert!(!cluster.store(0).core().exists_any_state(id));
}

#[test]
fn facade_crate_reexports_whole_api() {
    // Compile-time check that the memdis facade exposes every layer.
    use memdis::{
        disagg as d, ipc as i, memalloc as m, netsim as n, plasma as p, rpclite as r, tfsim as t,
    };
    let _ = t::Fabric::virtual_thymesisflow();
    let _ = m::FirstFit::new(1024);
    let _ = n::LinkModel::grpc_lan();
    let _ = i::InprocHub::new();
    let _ = r::Status::not_found("x");
    let _ = p::ObjectId::from_name("x");
    let _ = d::ClusterConfig::functional(1, 4096);
}
