//! Length-prefixed message framing.
//!
//! Every message exchanged between Plasma clients, stores and peer stores
//! is one [`Frame`]: a 4-byte little-endian payload length, a 4-byte
//! message-type tag, then the payload. The length prefix is capped so a
//! corrupt or hostile peer cannot trigger an unbounded allocation.

use bytes::Bytes;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload (1 GiB) — larger object data never rides
/// in a frame; it lives in (disaggregated) shared memory.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// One framed message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol-defined message type tag.
    pub msg_type: u32,
    /// Opaque payload (decoded by the protocol layer).
    pub payload: Bytes,
}

impl Frame {
    pub fn new(msg_type: u32, payload: impl Into<Bytes>) -> Self {
        Frame {
            msg_type,
            payload: payload.into(),
        }
    }

    /// Serialize to a writer.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let len = u32::try_from(self.payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame payload too large"))?;
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "frame payload exceeds MAX_FRAME_LEN",
            ));
        }
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&self.msg_type.to_le_bytes())?;
        w.write_all(&self.payload)?;
        w.flush()
    }

    /// Deserialize from a reader. Returns `UnexpectedEof` if the stream
    /// ends cleanly before a header byte (peer hung up).
    pub fn read_from(r: &mut impl Read) -> io::Result<Frame> {
        let mut hdr = [0u8; 8];
        r.read_exact(&mut hdr)?;
        let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
        let msg_type = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} exceeds limit"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(Frame {
            msg_type,
            payload: payload.into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_buffer() {
        let f = Frame::new(7, &b"payload bytes"[..]);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        let g = Frame::read_from(&mut &buf[..]).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn empty_payload_is_fine() {
        let f = Frame::new(0, Bytes::new());
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        assert_eq!(buf.len(), 8);
        assert_eq!(Frame::read_from(&mut &buf[..]).unwrap(), f);
    }

    #[test]
    fn oversized_length_rejected_on_read() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = Frame::read_from(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_stream_is_eof() {
        let f = Frame::new(1, &b"abcdef"[..]);
        let mut buf = Vec::new();
        f.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        let err = Frame::read_from(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn multiple_frames_stream() {
        let mut buf = Vec::new();
        for i in 0..5u32 {
            Frame::new(i, vec![i as u8; i as usize])
                .write_to(&mut buf)
                .unwrap();
        }
        let mut r = &buf[..];
        for i in 0..5u32 {
            let f = Frame::read_from(&mut r).unwrap();
            assert_eq!(f.msg_type, i);
            assert_eq!(f.payload.len(), i as usize);
        }
        assert!(Frame::read_from(&mut r).is_err());
    }
}
