//! The memory-disaggregated distributed Plasma store.
//!
//! [`DisaggStore`] wraps a local [`StoreCore`] (whose objects already live
//! in fabric-donated memory) and interconnects it with peer stores over
//! RPC, implementing the paper's two new constraints:
//!
//! * **Identifier uniqueness** — with a [`Ring`] installed (the cluster
//!   default), every id has a deterministic rendezvous owner and `create`
//!   routes to it point-to-point (`CREATE_AT`); uniqueness is an
//!   owner-local check and no reserve broadcast happens at all. Stores
//!   without a membership table (epoch 0) keep the paper's original
//!   protocol: `create` reserves the id on every peer before allocating,
//!   and concurrent reservations resolve deterministically (lowest node
//!   id wins).
//! * **Distributed object-usage sharing** — a pinning remote lookup takes a
//!   store-side reference attributed to the requesting node, and `release`
//!   feeds back over RPC, so owners never evict objects remote clients are
//!   reading (the future-work feature the paper defers).
//!
//! `get` control flow mirrors §IV-A2: look locally first; on a miss,
//! resolve the id's ring owner locally and ask *that* peer with one
//! point-to-point `GET_MANY`; the object *data* is then read by the
//! client directly through the disaggregated fabric — never copied over
//! the network. The legacy broadcast survives as an explicit fallback:
//! when no membership is installed, when the computed owner does not
//! hold the id (it may have been migrated off-ring), or while membership
//! epochs disagree mid-change. Ring routing outcomes are surfaced as the
//! `disagg.ring.hit` / `disagg.ring.fallback` counters. Remote lookups
//! are batched: every id a single peer must answer for travels in one
//! `GET_MANY` round trip (see [`DisaggStore::batch_get`]), and an
//! optional [`IdCache`] accelerates repeat lookups.

use crate::elastic::{BorrowLedger, ElasticConfig, HeatMap, LedgerCounts};
use crate::fabric::{ControlLink, DataPlaneKind, DataPlaneMetrics};
use crate::health::{Admission, HealthConfig, PeerHealth, PeerState, PeerStats, RetryPolicy};
use crate::idcache::{CacheMode, CachedEntry, IdCache};
use crate::proto::{
    method, BoolResp, BorrowReconcileReq, BorrowReconcileResp, CreateAtReq, CreateAtResp,
    CreateAtStatus, DataReadReq, DataReadResp, DataWriteReq, ForwardReq, GetManyEntry, GetManyReq,
    GetManyResp, GetManyStatus, IdReq, InvalidateReq, ListEntry, ListResp, LookupReq, LookupResp,
    MembershipResp, MetricsResp, ReconcileReq, ReconcileResp, ReleaseReq, ReserveReq, ReserveResp,
    SpillAtReq, SpillAtResp, SpillAtStatus,
};
use crate::replicate::{ReplicaCounts, ReplicaLedger, ReplicationConfig};
use crate::ring::{Membership, Ring};
use crate::usage::{RemoteRefs, Reservations, ReserveOutcome};
use bytes::Bytes;
use crossbeam::channel::Receiver;
use obs::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
use parking_lot::{Mutex, RwLock};
use plasma::{
    ObjectId, ObjectInfo, ObjectLocation, ObjectStore, PlasmaError, StoreCore, StoreStats,
};
use rand::rngs::SmallRng;
use rpclite::{RpcClient, RpcError, Service, Status, StatusCode};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tfsim::{Clock, NodeId};

/// How long a blocked `get` waits locally between remote lookup rounds,
/// so objects sealed on a peer *after* the previous lookup are discovered
/// promptly.
const REMOTE_POLL: Duration = Duration::from_millis(50);

/// A connected peer store.
#[derive(Clone)]
pub struct Peer {
    /// The fabric node the peer store runs on.
    pub node: NodeId,
    /// Its human-readable name (diagnostics).
    pub name: String,
    /// RPC channel to its interconnect service.
    pub client: Arc<RpcClient>,
}

/// Interconnect-layer counters.
#[derive(Debug, Default)]
pub struct DisaggCounters {
    /// Lookup RPCs issued to peers.
    pub lookup_rpcs: AtomicU64,
    /// Objects resolved via remote lookup.
    pub remote_found: AtomicU64,
    /// Reserve RPCs issued on create.
    pub reserve_rpcs: AtomicU64,
    /// Releases forwarded to owning peers.
    pub releases_forwarded: AtomicU64,
    /// Gets served from the Direct-mode id cache (no RPC, no pin).
    pub direct_cache_reads: AtomicU64,
    /// Ids resolved point-to-point at their computed ring owner.
    pub ring_hits: AtomicU64,
    /// Ids the ring could not settle (owner miss, owner unreachable, or
    /// self-owned but absent) that fell back to the lookup broadcast.
    pub ring_fallbacks: AtomicU64,
}

/// Snapshot of [`DisaggCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DisaggStats {
    /// Lookup RPCs issued to peers (GET_MANY batches count once each).
    pub lookup_rpcs: u64,
    /// Objects resolved via remote lookup.
    pub remote_found: u64,
    /// Reserve RPCs issued on create.
    pub reserve_rpcs: u64,
    /// Releases forwarded to owning peers.
    pub releases_forwarded: u64,
    /// Gets served from the Direct-mode id cache (no RPC, no pin).
    pub direct_cache_reads: u64,
    /// Ids resolved point-to-point at their computed ring owner.
    pub ring_hits: u64,
    /// Ids that fell back from ring routing to the lookup broadcast.
    pub ring_fallbacks: u64,
}

/// Fault-tolerance knobs for the store interconnect, grouped so cluster
/// harnesses can pass them through unchanged.
#[derive(Debug, Clone)]
pub struct InterconnectConfig {
    /// Per-call deadline (`None` = wait forever, the pre-fault-tolerance
    /// behavior).
    pub call_deadline: Option<Duration>,
    /// Retry policy for calls that fail in a retryable way.
    pub retry: RetryPolicy,
    /// Peer failure-detector thresholds and probe pacing.
    pub health: HealthConfig,
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        InterconnectConfig {
            call_deadline: Some(Duration::from_secs(2)),
            retry: RetryPolicy::default(),
            health: HealthConfig::default(),
        }
    }
}

/// Configuration of the distributed layer.
#[derive(Debug, Clone)]
pub struct DisaggConfig {
    /// Whether `get` misses consult peers at all.
    pub lookup_remote: bool,
    /// Optional remote-id cache.
    pub id_cache: Option<(CacheMode, usize)>,
    /// Interconnect fault tolerance (deadlines, retries, peer health).
    pub interconnect: InterconnectConfig,
    /// Elastic capacity tier: spill watermarks, lender headroom,
    /// admission control, heat threshold.
    pub elastic: ElasticConfig,
    /// Which bulk data-plane backend payload bytes move over
    /// (zero-copy mapped segments vs the framed rpclite fallback).
    pub data_plane: DataPlaneKind,
    /// Hot-object read replication policy.
    pub replication: ReplicationConfig,
}

impl Default for DisaggConfig {
    fn default() -> Self {
        DisaggConfig {
            lookup_remote: true,
            id_cache: None,
            interconnect: InterconnectConfig::default(),
            elastic: ElasticConfig::default(),
            data_plane: DataPlaneKind::default(),
            replication: ReplicationConfig::default(),
        }
    }
}

/// Pre-resolved [`obs`] handles for the distributed layer, registered in
/// the wrapped core's registry so one snapshot covers every layer of the
/// node. Hot paths record through these `Arc`s — atomics only, no
/// registry lookup.
struct DisaggMetrics {
    /// `get` latency for ids served by the local core on the first pass.
    get_local_hit: Arc<Histogram>,
    /// `get` latency for ids resolved by a remote lookup round.
    get_remote_hit: Arc<Histogram>,
    /// `get` latency for ids still unresolved when the call returned.
    get_miss: Arc<Histogram>,
    /// End-to-end `create` latency (reserve broadcast + local allocate).
    create: Arc<Histogram>,
    /// Latency of one remote-lookup round (cache consults + fan-out).
    lookup_fanout: Arc<Histogram>,
    /// Ids carried per GET_MANY RPC issued to a peer — the batching
    /// factor of the multi-get hot path (1 = degenerated to unary).
    get_many_batch: Arc<Histogram>,
    /// Ids resolved point-to-point at their computed ring owner.
    ring_hit: Arc<Counter>,
    /// Ids that fell back from ring routing to the lookup broadcast.
    ring_fallback: Arc<Counter>,
    idcache_hits: Arc<Counter>,
    idcache_misses: Arc<Counter>,
    /// Interconnect call retries (attempts after the first).
    peer_retries: Arc<Counter>,
    /// Parked RELEASEs awaiting an unreachable peer (current backlog).
    pending_releases: Arc<Gauge>,
    migrations_completed: Arc<Counter>,
    migrations_aborted_in_use: Arc<Counter>,
    migrations_failed: Arc<Counter>,
    /// Spills acknowledged by a lender (delegations created).
    spills_completed: Arc<Counter>,
    /// Spill attempts a lender refused (its own pressure) or that failed.
    spills_refused: Arc<Counter>,
    /// Heat-driven delegations toward an object's dominant reader.
    rebalances: Arc<Counter>,
    /// `Moved` redirects served from the owner-side lent ledger.
    redirects_served: Arc<Counter>,
    /// Redirects this node followed to a holder (requester side).
    redirects_followed: Arc<Counter>,
    /// Creates shed with `Overloaded` by admission control.
    overload_rejected: Arc<Counter>,
    /// Bytes currently delegated to lender peers (the node's spilled
    /// footprint; complements `plasma.used_bytes`/`plasma.free_bytes`).
    spilled_bytes: Arc<Gauge>,
    /// Objects currently lent out (owner-side ledger size).
    lent_objects: Arc<Gauge>,
    /// Objects currently held for other owners (holder-side ledger size).
    borrowed_objects: Arc<Gauge>,
    /// Replicas confirmed adopted by a holder (owner side).
    replicas_created: Arc<Counter>,
    /// Replica offers a holder refused (or that failed en route).
    replicas_refused: Arc<Counter>,
    /// Replicas dropped by an owner-initiated invalidation (holder side).
    replicas_invalidated: Arc<Counter>,
    /// Local `get` slots served by a held replica instead of a remote
    /// round trip — the replication win, countable.
    replica_local_hits: Arc<Counter>,
    /// Objects of ours currently replicated elsewhere (owner ledger).
    replicas_outstanding: Arc<Gauge>,
    /// Replicas currently held here for other owners (holder ledger).
    replicas_held: Arc<Gauge>,
}

impl DisaggMetrics {
    fn new(registry: &Registry) -> DisaggMetrics {
        DisaggMetrics {
            get_local_hit: registry.histogram("disagg.get.local_hit.latency_ns"),
            get_remote_hit: registry.histogram("disagg.get.remote_hit.latency_ns"),
            get_miss: registry.histogram("disagg.get.miss.latency_ns"),
            create: registry.histogram("disagg.create.latency_ns"),
            lookup_fanout: registry.histogram("disagg.lookup.fanout.latency_ns"),
            get_many_batch: registry.histogram("disagg.get_many.batch_size"),
            ring_hit: registry.counter("disagg.ring.hit"),
            ring_fallback: registry.counter("disagg.ring.fallback"),
            idcache_hits: registry.counter("disagg.idcache.hits"),
            idcache_misses: registry.counter("disagg.idcache.misses"),
            peer_retries: registry.counter("disagg.peer.retries"),
            pending_releases: registry.gauge("disagg.pending_releases"),
            migrations_completed: registry.counter("disagg.migrations.completed"),
            migrations_aborted_in_use: registry.counter("disagg.migrations.aborted_in_use"),
            migrations_failed: registry.counter("disagg.migrations.failed"),
            spills_completed: registry.counter("disagg.elastic.spills"),
            spills_refused: registry.counter("disagg.elastic.spills_refused"),
            rebalances: registry.counter("disagg.elastic.rebalances"),
            redirects_served: registry.counter("disagg.elastic.redirects_served"),
            redirects_followed: registry.counter("disagg.elastic.redirects_followed"),
            overload_rejected: registry.counter("disagg.elastic.overload_rejected"),
            spilled_bytes: registry.gauge("plasma.spilled_bytes"),
            lent_objects: registry.gauge("disagg.elastic.lent_objects"),
            borrowed_objects: registry.gauge("disagg.elastic.borrowed_objects"),
            replicas_created: registry.counter("disagg.replica.created"),
            replicas_refused: registry.counter("disagg.replica.refused"),
            replicas_invalidated: registry.counter("disagg.replica.invalidated"),
            replica_local_hits: registry.counter("disagg.replica.local_hits"),
            replicas_outstanding: registry.gauge("disagg.replica.outstanding"),
            replicas_held: registry.gauge("disagg.replica.held"),
        }
    }
}

struct Inner {
    core: StoreCore,
    node: NodeId,
    peers: RwLock<Vec<Peer>>,
    /// Remote objects we hold pinned references to, per owner:
    /// id -> [(owner, count), ...]. Usually one owner per id, but a
    /// migration racing our lookups can briefly leave copies on two
    /// nodes — each owner's pins are ledgered (and released) separately
    /// so a pin taken on one node is never "released" to another.
    remote_held: Mutex<HashMap<ObjectId, Vec<(NodeId, u64)>>>,
    /// Fire-and-forget RELEASEs that failed because the peer was
    /// unreachable: (owner, id), retried after the next successful call
    /// to that peer so the owner-side pin cannot leak for its lifetime.
    pending_releases: Mutex<Vec<(NodeId, ObjectId)>>,
    idcache: Option<IdCache>,
    lookup_remote: bool,
    /// The rendezvous placement ring (`None` until a membership table is
    /// installed — legacy broadcast mode).
    ring: RwLock<Option<Ring>>,
    /// Requester side of forwarded creates: ids this node created at a
    /// remote ring owner and has not yet sealed/aborted, mapped to that
    /// owner so `seal`/`abort` route point-to-point.
    staged_out: Mutex<HashMap<ObjectId, NodeId>>,
    /// Owner side of forwarded creates: staged (unsealed) objects a
    /// remote requester allocated here, with the location returned. Kept
    /// until SEAL_AT/ABORT_AT so a retried CREATE_AT (response lost) is
    /// answered idempotently, and so RECONCILE can abort orphans.
    staged_remote: Mutex<HashMap<ObjectId, (NodeId, ObjectLocation)>>,
    /// Ids whose forwarded seal already consumed the creator's reference
    /// at the remote owner. The Plasma client's put flow always follows
    /// seal with one release; for these ids that release is satisfied
    /// locally (a no-op) instead of crossing the interconnect — a
    /// networked trailing release could fail mid-put and strand the pin.
    release_waivers: Mutex<HashSet<ObjectId>>,
    reservations: Reservations,
    remote_refs: RemoteRefs,
    /// Both ends of every elastic delegation this node participates in.
    ledger: BorrowLedger,
    /// Both sides of every read-replica this node participates in.
    replicas: ReplicaLedger,
    /// Owner-side remote-hit attribution driving rebalancing.
    heat: HeatMap,
    elastic: ElasticConfig,
    replication: ReplicationConfig,
    /// The bulk data-plane backend payload bytes move over.
    data_plane: Arc<dyn crate::fabric::Fabric>,
    /// Byte counters proving which plane payloads took.
    dp: DataPlaneMetrics,
    counters: DisaggCounters,
    metrics: DisaggMetrics,
    health: PeerHealth,
    retry: RetryPolicy,
    call_deadline: Option<Duration>,
    /// The cluster clock; retry backoff is charged here so virtual-time
    /// tests stay deterministic and instant.
    clock: Clock,
    retry_rng: Mutex<SmallRng>,
}

/// Why a guarded call to one peer produced no usable response.
#[derive(Debug)]
enum PeerFail {
    /// Peer is `Down`: skipped without touching the wire.
    Skipped,
    /// The call (and its retries) failed at the transport level — the
    /// peer is unreachable right now.
    Unreachable(String),
    /// The peer answered with a definite, non-retryable error.
    Rpc(RpcError),
}

/// The distributed store. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct DisaggStore {
    inner: Arc<Inner>,
}

impl DisaggStore {
    /// Wrap `core` with the distributed layer. Peers are added afterwards
    /// with [`DisaggStore::add_peer`].
    pub fn new(core: StoreCore, config: DisaggConfig) -> Self {
        let node = core.node();
        let clock = core.fabric().clock().clone();
        let metrics = DisaggMetrics::new(core.registry());
        let dp = DataPlaneMetrics::register(core.registry());
        let data_plane =
            crate::fabric::build(config.data_plane, core.fabric().clone(), node, dp.clone());
        DisaggStore {
            inner: Arc::new(Inner {
                health: PeerHealth::with_metrics(
                    config.interconnect.health,
                    clock.clone(),
                    core.registry(),
                ),
                metrics,
                retry: config.interconnect.retry,
                call_deadline: config.interconnect.call_deadline,
                clock,
                retry_rng: Mutex::new(RetryPolicy::rng(0x9e37_79b9 ^ u64::from(node.0))),
                core,
                node,
                peers: RwLock::new(Vec::new()),
                remote_held: Mutex::new(HashMap::new()),
                pending_releases: Mutex::new(Vec::new()),
                idcache: config.id_cache.map(|(mode, cap)| IdCache::new(mode, cap)),
                lookup_remote: config.lookup_remote,
                ring: RwLock::new(None),
                staged_out: Mutex::new(HashMap::new()),
                staged_remote: Mutex::new(HashMap::new()),
                release_waivers: Mutex::new(HashSet::new()),
                reservations: Reservations::new(),
                remote_refs: RemoteRefs::new(),
                ledger: BorrowLedger::new(),
                replicas: ReplicaLedger::new(),
                heat: HeatMap::new(),
                elastic: config.elastic,
                replication: config.replication,
                data_plane,
                dp,
                counters: DisaggCounters::default(),
            }),
        }
    }

    /// The underlying local store.
    pub fn core(&self) -> &StoreCore {
        &self.inner.core
    }

    /// The fabric node this store runs on.
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// Connect a peer store.
    pub fn add_peer(&self, peer: Peer) {
        self.inner.peers.write().push(peer);
    }

    /// Number of connected peers.
    pub fn peer_count(&self) -> usize {
        self.inner.peers.read().len()
    }

    /// The interconnect service to expose over RPC for other stores.
    pub fn interconnect_service(&self) -> Arc<dyn Service> {
        Arc::new(Interconnect {
            store: self.clone(),
        })
    }

    /// Interconnect counters.
    pub fn disagg_stats(&self) -> DisaggStats {
        let c = &self.inner.counters;
        DisaggStats {
            lookup_rpcs: c.lookup_rpcs.load(Ordering::Relaxed),
            remote_found: c.remote_found.load(Ordering::Relaxed),
            reserve_rpcs: c.reserve_rpcs.load(Ordering::Relaxed),
            releases_forwarded: c.releases_forwarded.load(Ordering::Relaxed),
            direct_cache_reads: c.direct_cache_reads.load(Ordering::Relaxed),
            ring_hits: c.ring_hits.load(Ordering::Relaxed),
            ring_fallbacks: c.ring_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Install (or supersede) the membership table the placement ring
    /// hashes over. Tables are versioned: a table whose epoch does not
    /// exceed the installed one is ignored, so stale gossip can never
    /// roll membership back. Returns whether the table was adopted.
    pub fn set_membership(&self, membership: Membership) -> bool {
        let mut ring = self.inner.ring.write();
        let installed = ring.as_ref().map(|r| r.epoch()).unwrap_or(0);
        if membership.epoch <= installed {
            return false;
        }
        *ring = Some(Ring::new(membership));
        true
    }

    /// The currently installed membership table, if any.
    pub fn membership(&self) -> Option<Membership> {
        self.inner
            .ring
            .read()
            .as_ref()
            .map(|r| r.membership().clone())
    }

    /// The installed membership epoch (0 = none, legacy broadcast mode).
    pub fn ring_epoch(&self) -> u64 {
        self.inner
            .ring
            .read()
            .as_ref()
            .map(|r| r.epoch())
            .unwrap_or(0)
    }

    /// The ring-computed owner of `id` (`None` without a membership).
    /// A pure local computation — zero RPCs.
    pub fn ring_owner(&self, id: ObjectId) -> Option<NodeId> {
        self.inner.ring.read().as_ref().and_then(|r| r.owner_of(id))
    }

    /// Pull the membership table from `node` over the interconnect and
    /// adopt it if newer. Invoked when a call to/from that node gossiped
    /// an epoch ahead of ours.
    fn pull_membership_from(&self, node: NodeId) {
        let Some(peer) = self.peers_snapshot().into_iter().find(|p| p.node == node) else {
            return;
        };
        if let Ok(body) = self.peer_call(&peer, method::MEMBERSHIP, Bytes::new()) {
            if let Ok(resp) = MembershipResp::decode(body) {
                self.set_membership(Membership::new(resp.epoch, resp.nodes));
            }
        }
    }

    /// React to an epoch gossiped by `node`: pull its table if ahead.
    fn maybe_adopt_epoch(&self, node: NodeId, peer_epoch: u64) {
        if peer_epoch > self.ring_epoch() {
            self.pull_membership_from(node);
        }
    }

    fn note_ring_hits(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.inner
            .counters
            .ring_hits
            .fetch_add(n, Ordering::Relaxed);
        self.inner.metrics.ring_hit.add(n);
    }

    fn note_ring_fallbacks(&self, n: u64) {
        if n == 0 {
            return;
        }
        self.inner
            .counters
            .ring_fallbacks
            .fetch_add(n, Ordering::Relaxed);
        self.inner.metrics.ring_fallback.add(n);
    }

    /// Remote-id-cache counters, if a cache is configured: (hits, misses).
    pub fn idcache_counters(&self) -> Option<(u64, u64)> {
        self.inner.idcache.as_ref().map(|c| c.counters())
    }

    /// Number of entries currently in the remote-id cache, if one is
    /// configured. Tests use this to observe invalidation (e.g. the
    /// Up→Down transition dropping every hint at a dead peer).
    pub fn idcache_len(&self) -> Option<usize> {
        self.inner.idcache.as_ref().map(|c| c.len())
    }

    /// Point-in-time snapshot of every metric this node records. The
    /// plasma core, the distributed layer, and (when the harness wires
    /// them) the interconnect RPC clients all share the core's registry,
    /// so one snapshot covers the whole node.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.core.registry().snapshot()
    }

    /// Fetch one peer's metrics snapshot over the interconnect
    /// (`METRICS` RPC): any node can introspect any peer live.
    pub fn peer_metrics(&self, node: NodeId) -> Result<MetricsSnapshot, PlasmaError> {
        let peer = self
            .peers_snapshot()
            .into_iter()
            .find(|p| p.node == node)
            .ok_or_else(|| PlasmaError::Transport(format!("no peer for {node}")))?;
        match self.peer_call(&peer, method::METRICS, Bytes::new()) {
            Ok(body) => Self::decode_metrics(body).map(|(_, snap)| snap),
            Err(PeerFail::Skipped) => Err(PlasmaError::PeerUnavailable(format!(
                "peer {} is down",
                peer.name
            ))),
            Err(PeerFail::Unreachable(m)) => Err(PlasmaError::PeerUnavailable(m)),
            Err(PeerFail::Rpc(e)) => Err(Self::rpc_err(e)),
        }
    }

    /// Cluster-wide metrics: this node's snapshot plus every reachable
    /// peer's, queried in parallel. Like [`DisaggStore::global_list`],
    /// unreachable peers are omitted — the snapshot degrades to a
    /// partial cluster view instead of failing.
    pub fn cluster_metrics(&self) -> Result<Vec<(NodeId, MetricsSnapshot)>, PlasmaError> {
        let mut out = Vec::with_capacity(self.peer_count() + 1);
        out.push((self.inner.node, self.metrics_snapshot()));
        let peers = self.peers_snapshot();
        let responses = self.fanout(&peers, |peer| {
            self.peer_call(peer, method::METRICS, Bytes::new())
        });
        for response in responses {
            let Ok(body) = response else { continue };
            out.push(Self::decode_metrics(body)?);
        }
        Ok(out)
    }

    /// Merged cluster snapshot: the fold of
    /// [`DisaggStore::cluster_metrics`] (merging is associative and
    /// commutative, so the order of nodes does not matter).
    pub fn merged_cluster_metrics(&self) -> Result<MetricsSnapshot, PlasmaError> {
        Ok(MetricsSnapshot::merged(
            self.cluster_metrics()?.iter().map(|(_, snap)| snap),
        ))
    }

    fn decode_metrics(body: Bytes) -> Result<(NodeId, MetricsSnapshot), PlasmaError> {
        let resp = MetricsResp::decode(body)
            .map_err(|e| PlasmaError::Protocol(format!("metrics response: {e}")))?;
        let snap = MetricsSnapshot::decode(&resp.snapshot)
            .map_err(|e| PlasmaError::Protocol(format!("metrics snapshot: {e}")))?;
        Ok((resp.node, snap))
    }

    /// References this store holds on behalf of remote nodes.
    pub fn remote_pin_count(&self) -> u64 {
        self.inner.remote_refs.total()
    }

    /// Pins this node holds on *other* nodes' objects (the requester-side
    /// ledger): every successful remote lookup slot adds one, every
    /// release removes one. Zero at quiesce when all buffers are
    /// released — the chaos checker asserts exactly that.
    pub fn held_remote_pins(&self) -> u64 {
        self.inner
            .remote_held
            .lock()
            .values()
            .flat_map(|entries| entries.iter().map(|(_, count)| *count))
            .sum()
    }

    /// Quiesce-time pin drain: release every pin still in the
    /// requester-side ledger. Workload paths deliberately absorb some
    /// pins into the ledger without a paired buffer (e.g. a batch lookup
    /// that returns the same object in several slots pins once per slot
    /// but hands out one buffer); those are correct during the run and
    /// garbage once it ends — an undrained pin keeps the owner's copy
    /// unevictable and undeletable forever. Returns the number of pins
    /// released. Errors on individual releases are ignored: the follow-up
    /// `reconcile_pins` sweep trims whatever an unreachable owner missed.
    ///
    /// Like `reconcile_pins`, only sound after the workload has drained —
    /// a ledgered pin may pair with a buffer still in flight.
    pub fn drain_remote_pins(&self) -> u64 {
        let mut drained = 0u64;
        loop {
            let snapshot: Vec<(ObjectId, u64)> = self
                .inner
                .remote_held
                .lock()
                .iter()
                .map(|(id, entries)| (*id, entries.iter().map(|(_, c)| *c).sum::<u64>()))
                .collect();
            let mut progressed = false;
            for (id, count) in snapshot {
                for _ in 0..count {
                    if self.release(id).is_ok() {
                        progressed = true;
                        drained += 1;
                    }
                }
            }
            if !progressed {
                // Either the ledger is empty or every remaining owner is
                // unreachable; leave stragglers for reconciliation rather
                // than spinning on them.
                return drained;
            }
        }
    }

    /// Quiesce-time pin reconciliation: tell every peer exactly which of
    /// its objects this node still ledgers pins on, so the peer can trim
    /// owner-side pins orphaned by lost responses (it pinned while
    /// serving a lookup whose response never arrived, so no release will
    /// ever come). Returns the total number of orphan pins trimmed
    /// across all peers.
    ///
    /// Only sound when no lookup/release traffic from this node is in
    /// flight — a response still on the wire carries pins not yet in the
    /// ledger, and reconciling under load would trim them. Call it after
    /// the workload has drained, never during one.
    pub fn reconcile_pins(&self) -> Result<u64, PlasmaError> {
        let peers = self.peers_snapshot();
        let mut trimmed = 0u64;
        for peer in &peers {
            let holds: Vec<(ObjectId, u64)> = {
                let held = self.inner.remote_held.lock();
                held.iter()
                    .filter_map(|(id, entries)| {
                        let count: u64 = entries
                            .iter()
                            .filter(|(node, _)| *node == peer.node)
                            .map(|(_, c)| *c)
                            .sum();
                        (count > 0).then_some((*id, count))
                    })
                    .collect()
            };
            let req = ReconcileReq {
                requester: self.inner.node,
                holds,
            };
            match self.peer_call(peer, method::RECONCILE, req.encode()) {
                Ok(body) => {
                    let resp = ReconcileResp::decode(body)
                        .map_err(|e| PlasmaError::Protocol(e.to_string()))?;
                    trimmed += resp.trimmed;
                }
                Err(PeerFail::Skipped) => {}
                Err(PeerFail::Unreachable(m)) => return Err(PlasmaError::PeerUnavailable(m)),
                Err(PeerFail::Rpc(e)) => return Err(Self::rpc_err(e)),
            }
        }
        Ok(trimmed)
    }

    /// Admission control: refuse a new create when the node already has
    /// `max_inflight_creates` objects created but not yet sealed. The
    /// operation is not started, so the typed rejection is always safe to
    /// retry after the suggested backoff.
    fn check_admission(&self) -> Result<(), PlasmaError> {
        let max = self.inner.elastic.max_inflight_creates;
        if max == 0 {
            return Ok(());
        }
        let st = self.inner.core.stats();
        if st.objects.saturating_sub(st.sealed_objects) >= max {
            self.inner.metrics.overload_rejected.inc();
            return Err(PlasmaError::Overloaded {
                retry_after_ms: self.inner.elastic.retry_after_ms,
            });
        }
        Ok(())
    }

    /// Local memory occupancy in parts-per-million of capacity — the
    /// pressure signal driving [`DisaggStore::maybe_spill`].
    pub fn memory_pressure_ppm(&self) -> u64 {
        let st = self.inner.core.stats();
        if st.capacity == 0 {
            return 0;
        }
        (u128::from(st.allocated_bytes) * 1_000_000 / u128::from(st.capacity)) as u64
    }

    /// Aggregate borrow-ledger occupancy (both directions).
    pub fn ledger_counts(&self) -> LedgerCounts {
        self.inner.ledger.counts()
    }

    /// Owner-side ledger: every `(id, holder)` this node has lent out.
    /// The chaos quiesce audit cross-checks these against each holder's
    /// [`DisaggStore::borrowed_snapshot`].
    pub fn lent_snapshot(&self) -> Vec<(ObjectId, NodeId)> {
        self.inner.ledger.lent_snapshot()
    }

    /// Holder-side ledger: every `(id, owner)` this node holds on behalf
    /// of another node.
    pub fn borrowed_snapshot(&self) -> Vec<(ObjectId, NodeId)> {
        self.inner.ledger.borrowed_snapshot()
    }

    fn sync_ledger_gauges(&self) {
        let counts = self.inner.ledger.counts();
        let m = &self.inner.metrics;
        m.spilled_bytes.set(counts.lent_bytes as i64);
        m.lent_objects.set(counts.lent as i64);
        m.borrowed_objects.set(counts.borrowed as i64);
    }

    fn sync_replica_gauges(&self) {
        let counts = self.inner.replicas.counts();
        let m = &self.inner.metrics;
        m.replicas_outstanding.set(counts.outstanding as i64);
        m.replicas_held.set(counts.held as i64);
    }

    /// The name of the configured data-plane backend (`"mapped"` or
    /// `"framed"`), for diagnostics and bench labels.
    pub fn data_plane_name(&self) -> &'static str {
        self.inner.data_plane.name()
    }

    /// Replica-ledger occupancy (both sides).
    pub fn replica_counts(&self) -> ReplicaCounts {
        self.inner.replicas.counts()
    }

    /// Owner-side replica ledger: every `(id, holder)` pair this node
    /// has replicated out. The chaos quiesce audit cross-checks these
    /// against each holder's [`DisaggStore::replica_snapshot`].
    pub fn replica_held_snapshot(&self) -> Vec<(ObjectId, NodeId)> {
        self.inner.replicas.held_snapshot()
    }

    /// Holder-side replica ledger: every `(id, owner)` replica this
    /// node currently holds for another owner.
    pub fn replica_snapshot(&self) -> Vec<(ObjectId, NodeId)> {
        self.inner.replicas.replica_snapshot()
    }

    /// Resolve `id` and read its full payload (data + metadata bytes)
    /// through the data plane — the complete descriptor lifecycle in
    /// one call: **negotiate** (pinning get over the control plane) →
    /// **map/read** (the configured [`crate::fabric::Fabric`] backend)
    /// → **release**. Returns `None` when the id did not resolve within
    /// `timeout`.
    pub fn get_bytes(
        &self,
        id: ObjectId,
        timeout: Duration,
    ) -> Result<Option<Vec<u8>>, PlasmaError> {
        let found = ObjectStore::get(self, &[id], timeout)?;
        let Some(loc) = found[0] else {
            return Ok(None);
        };
        let pin = RemotePinGuard::new(self, id);
        let bytes = self.read_payload(&loc)?;
        pin.release()?;
        Ok(Some(bytes))
    }

    /// Read the payload bytes behind a negotiated descriptor: local
    /// objects straight from the local segment, remote ones through the
    /// configured data-plane backend. The caller must hold the pin the
    /// negotiation took (see [`DisaggStore::get_bytes`]).
    pub fn read_payload(&self, loc: &ObjectLocation) -> Result<Vec<u8>, PlasmaError> {
        if loc.seg.owner == self.inner.node {
            let mapping = self.inner.core.mapping_for(loc)?;
            Ok(mapping.view(loc.offset, loc.total_size())?.read_all()?)
        } else {
            self.inner
                .data_plane
                .pull(&StoreLink(self), loc.seg.owner, loc)
        }
    }

    /// Write `data` into a staged descriptor through the data plane —
    /// the payload step of a forwarded create (`CREATE_AT` returned the
    /// descriptor; this moves the bytes; `seal` completes it).
    pub fn write_payload(&self, loc: &ObjectLocation, data: &[u8]) -> Result<(), PlasmaError> {
        if loc.seg.owner == self.inner.node {
            let mapping = self.inner.core.mapping_for(loc)?;
            Ok(mapping.write_at(loc.offset, data)?)
        } else {
            self.inner
                .data_plane
                .push(&StoreLink(self), loc.seg.owner, loc, data)
        }
    }

    /// On the framed backend, read `loc`'s payload from the local
    /// segment and embed it in an outgoing spill/replicate request
    /// (counted as framed bytes — the receiver must not issue a nested
    /// RPC back at us from inside its handler). On the mapped backend
    /// return `None`: the receiver reads the segment directly.
    fn framed_payload_for(&self, loc: &ObjectLocation) -> Result<Option<Bytes>, PlasmaError> {
        if !self.inner.data_plane.framed() {
            return Ok(None);
        }
        let mapping = self.inner.core.mapping_for(loc)?;
        let bytes = mapping.view(loc.offset, loc.total_size())?.read_all()?;
        self.inner.dp.framed_payload_bytes.add(bytes.len() as u64);
        Ok(Some(Bytes::from(bytes)))
    }

    /// Invalidate every replica of `id` **before** its delete proceeds.
    /// Any holder that cannot confirm fails the delete — the object
    /// stays intact. This ordering is the protocol's safety story: a
    /// *successful* delete implies no live replica survived it, which
    /// is exactly the invariant the chaos quiesce audit asserts.
    fn invalidate_replicas(&self, id: ObjectId) -> Result<(), PlasmaError> {
        let holders = self.inner.replicas.holders(id);
        if holders.is_empty() {
            return Ok(());
        }
        let peers = self.peers_snapshot();
        for holder in holders {
            let Some(peer) = peers.iter().find(|p| p.node == holder) else {
                return Err(PlasmaError::PeerUnavailable(format!(
                    "no peer for replica holder {holder}"
                )));
            };
            let req = InvalidateReq {
                owner: self.inner.node,
                id,
            };
            match self.peer_call(peer, method::INVALIDATE, req.encode()) {
                // Confirmed: dropped now, or the holder had no entry —
                // either way no replica survives there.
                Ok(_) => {
                    self.inner.replicas.remove_holder(id, holder);
                }
                Err(PeerFail::Skipped) => {
                    return Err(PlasmaError::PeerUnavailable(format!(
                        "replica holder {} is down",
                        peer.name
                    )));
                }
                Err(PeerFail::Unreachable(m)) => return Err(PlasmaError::PeerUnavailable(m)),
                Err(PeerFail::Rpc(e)) => return Err(Self::rpc_err(e)),
            }
        }
        self.sync_replica_gauges();
        Ok(())
    }

    /// Propagate a read replica of one sealed, locally-held object to
    /// `holder` over the data plane (`REPLICATE_AT`). Unlike
    /// [`DisaggStore::spill_to`], the owner **keeps its copy** and
    /// remains the write/metadata authority; the holder serves its own
    /// future reads locally. The source copy is pinned while the holder
    /// copies — which is what makes a delete racing the propagation
    /// safe (the owner's local delete fails `ObjectInUse` until the pin
    /// drops, and after the ledger entry lands the delete invalidates
    /// first). Returns whether the holder adopted.
    pub fn replicate_to(&self, id: ObjectId, holder: NodeId) -> Result<bool, PlasmaError> {
        if !self.inner.replication.enabled || holder == self.inner.node {
            return Ok(false);
        }
        // Single-lease interaction: a lent object's bytes live at its
        // holder, not here — it is never replicated.
        if self.inner.ledger.lent_holder(id).is_some() {
            return Ok(false);
        }
        let Some(peer) = self.peers_snapshot().into_iter().find(|p| p.node == holder) else {
            return Err(PlasmaError::Transport(format!("no peer for {holder}")));
        };
        let Some(loc) = self.inner.core.get_local(id) else {
            return Err(PlasmaError::ObjectNotFound(id));
        };
        let payload = match self.framed_payload_for(&loc) {
            Ok(p) => p,
            Err(e) => {
                let _ = self.inner.core.release(id);
                return Err(e);
            }
        };
        let req = SpillAtReq {
            requester: self.inner.node,
            epoch: self.ring_epoch(),
            location: loc,
            payload,
        };
        let adopted = match self.peer_call(&peer, method::REPLICATE_AT, req.encode()) {
            Ok(body) => match SpillAtResp::decode(body) {
                Ok(resp) => {
                    self.maybe_adopt_epoch(holder, resp.epoch);
                    resp.status == SpillAtStatus::Adopted
                }
                // A response arrived but did not decode (corrupted on
                // the wire): the handler ran and may have adopted —
                // same ambiguity direction as the transport errors
                // below, so the entry is recorded before bailing.
                Err(e) => {
                    self.inner
                        .replicas
                        .record_held(id, holder, loc.total_size());
                    self.sync_replica_gauges();
                    let _ = self.inner.core.release(id);
                    return Err(PlasmaError::Protocol(format!("replicate_at response: {e}")));
                }
            },
            // Ambiguous outcomes: the holder may have sealed a replica.
            // Record the owner-side entry anyway — an entry without a
            // replica is trimmed at reconcile, but a replica without an
            // entry would dodge invalidation and serve stale reads
            // after a delete. `Unreachable` is the obvious case;
            // `Rpc` with a non-Status error means a response arrived
            // but could not be decoded (e.g. corrupted on the wire) —
            // the handler ran, so it may well have adopted.
            Err(PeerFail::Unreachable(_)) => {
                self.inner
                    .replicas
                    .record_held(id, holder, loc.total_size());
                self.sync_replica_gauges();
                false
            }
            Err(PeerFail::Skipped) => false,
            // A Status reply was authored by the handler itself, which
            // only answers `REPLICATE_AT` with a status *before* any
            // adopt: definite non-adoption.
            Err(PeerFail::Rpc(RpcError::Status(s))) => {
                let _ = self.inner.core.release(id);
                return Err(Self::rpc_err(RpcError::Status(s)));
            }
            Err(PeerFail::Rpc(e)) => {
                self.inner
                    .replicas
                    .record_held(id, holder, loc.total_size());
                self.sync_replica_gauges();
                let _ = self.inner.core.release(id);
                return Err(Self::rpc_err(e));
            }
        };
        if !adopted {
            self.inner.metrics.replicas_refused.inc();
            self.inner.core.release(id)?;
            return Ok(false);
        }
        self.inner
            .replicas
            .record_held(id, holder, loc.total_size());
        self.sync_replica_gauges();
        self.inner.metrics.replicas_created.inc();
        self.inner.core.release(id)?;
        Ok(true)
    }

    /// One heat-driven replication pass: every owned object whose
    /// dominant remote reader accumulated at least
    /// [`ReplicationConfig::min_hits`] remote hits gets a replica *at
    /// that reader* (up to [`ReplicationConfig::max_holders`]),
    /// converting its future remote reads into local ones while the
    /// owner keeps serving everyone else. Returns replicas created.
    pub fn replicate_hot(&self) -> Result<u64, PlasmaError> {
        if !self.inner.replication.enabled {
            return Ok(0);
        }
        let min_hits = self.inner.replication.min_hits;
        let mut created = 0u64;
        for (id, reader, _) in self.inner.heat.drain_hot(min_hits) {
            if reader == self.inner.node
                || self.ring_owner(id) != Some(self.inner.node)
                || self.inner.ledger.lent_holder(id).is_some()
                || self.inner.replicas.holder_count(id) >= self.inner.replication.max_holders
                || self.inner.replicas.is_holder(id, reader)
                || self.inner.core.peek(id).is_none()
            {
                continue;
            }
            if matches!(self.replicate_to(id, reader), Ok(true)) {
                created += 1;
            }
        }
        Ok(created)
    }

    /// Quiesce-time replica reconciliation (holder-initiated): report
    /// to every owner exactly which of its replicas this node still
    /// holds, and act on the answer — replicas the owner declared dead
    /// (object deleted/evicted, or the id is lent) are dropped here,
    /// and the owner trims entries this node no longer honors. Heals
    /// both halves of a lost `REPLICATE_AT` exchange.
    ///
    /// Like [`DisaggStore::reconcile_borrows`], only sound while no
    /// replication or delete traffic involving this node is in flight.
    /// Returns `(replicas dropped here, owner-side entries trimmed)`.
    pub fn reconcile_replicas(&self) -> Result<(u64, u64), PlasmaError> {
        let peers = self.peers_snapshot();
        let mut dropped = 0u64;
        let mut trimmed = 0u64;
        for peer in &peers {
            // Report only replicas still actually sealed here: an entry
            // whose local copy was evicted must not be healed back into
            // the owner's ledger.
            let held: Vec<ObjectId> = self
                .inner
                .replicas
                .replicas_from(peer.node)
                .into_iter()
                .filter(|id| {
                    let alive = self.inner.core.peek(*id).is_some();
                    if !alive {
                        self.inner.replicas.remove_replica(*id, peer.node);
                    }
                    alive
                })
                .collect();
            let req = BorrowReconcileReq {
                requester: self.inner.node,
                borrowed: held,
            };
            match self.peer_call(peer, method::REPLICA_RECONCILE, req.encode()) {
                Ok(body) => {
                    let resp = BorrowReconcileResp::decode(body)
                        .map_err(|e| PlasmaError::Protocol(e.to_string()))?;
                    trimmed += resp.trimmed;
                    for id in resp.drop {
                        let _ = self.inner.core.delete_deferred(id);
                        self.inner.replicas.remove_replica(id, peer.node);
                        dropped += 1;
                    }
                }
                Err(PeerFail::Skipped) => {}
                Err(PeerFail::Unreachable(m)) => return Err(PlasmaError::PeerUnavailable(m)),
                Err(PeerFail::Rpc(e)) => return Err(Self::rpc_err(e)),
            }
        }
        self.sync_replica_gauges();
        Ok((dropped, trimmed))
    }

    /// Each reachable peer's advertised free bytes, read from the
    /// `plasma.free_bytes` gauge of its METRICS snapshot — the capacity
    /// gossip lender selection ranks on. Unreachable peers are omitted.
    fn peer_free_bytes(&self) -> Vec<(NodeId, i64)> {
        let peers = self.peers_snapshot();
        let responses = self.fanout(&peers, |peer| {
            self.peer_call(peer, method::METRICS, Bytes::new())
        });
        peers
            .iter()
            .zip(responses)
            .filter_map(|(peer, response)| {
                let (_, snap) = Self::decode_metrics(response.ok()?).ok()?;
                Some((peer.node, snap.gauge("plasma.free_bytes")))
            })
            .collect()
    }

    /// Spill cold objects if local occupancy exceeds the configured high
    /// watermark; otherwise a no-op. Returns bytes delegated away.
    pub fn maybe_spill(&self) -> Result<u64, PlasmaError> {
        if self.memory_pressure_ppm() < self.inner.elastic.high_watermark_ppm {
            return Ok(0);
        }
        self.spill_cold(self.inner.elastic.max_spill_batch)
    }

    /// One spill pass: walk up to `max_objects` of the LRU tail
    /// (coldest first) and delegate each to the peer currently
    /// advertising the most free bytes, until occupancy drops below the
    /// low watermark or candidates run out. Only ring-owned objects are
    /// delegated — redirects are served from the owner's ledger, so an
    /// off-ring copy spilled elsewhere would be unfindable. Returns
    /// bytes delegated; refusals and unreachable lenders skip the
    /// candidate rather than failing the pass.
    pub fn spill_cold(&self, max_objects: usize) -> Result<u64, PlasmaError> {
        let mut lenders = self.peer_free_bytes();
        if lenders.is_empty() {
            return Ok(0);
        }
        let low = self.inner.elastic.low_watermark_ppm;
        let mut spilled = 0u64;
        for (id, bytes) in self.inner.core.cold_candidates(max_objects) {
            if self.memory_pressure_ppm() <= low {
                break;
            }
            if self.ring_owner(id) != Some(self.inner.node) {
                continue;
            }
            // Freest lender first; debit our own view as we go so one
            // pass cannot dogpile a single peer past its headroom.
            lenders.sort_by_key(|&(node, free)| (std::cmp::Reverse(free), node.0));
            let Some(&(target, free)) = lenders.first() else {
                break;
            };
            if free < bytes as i64 {
                continue;
            }
            match self.spill_to(id, target) {
                Ok(true) => {
                    spilled += bytes;
                    lenders[0].1 -= bytes as i64;
                }
                Ok(false) | Err(_) => {
                    // Refused or unreachable: stop ranking this lender
                    // first for the rest of the pass.
                    lenders[0].1 = i64::MIN;
                }
            }
        }
        Ok(spilled)
    }

    /// Delegate one sealed, locally-held object to `holder` — the spill
    /// primitive (capacity-driven via [`DisaggStore::spill_cold`],
    /// heat-driven via [`DisaggStore::rebalance_once`]). The local copy
    /// is pinned while the lender copies and seals its replica over the
    /// fabric (`SPILL_AT`); only after the lender acknowledges adoption
    /// is the local copy deleted (deferred, so in-flight local readers
    /// finish first) and the `lent` ledger entry recorded. Returns
    /// whether the lender adopted; `Ok(false)` means it refused and
    /// nothing changed.
    pub fn spill_to(&self, id: ObjectId, holder: NodeId) -> Result<bool, PlasmaError> {
        if holder == self.inner.node {
            return Ok(false);
        }
        // Single-lease interaction: an object with outstanding replicas
        // is never lent — its delete path must stay a pure invalidation
        // fan-out, not a lease chase on top of one.
        if self.inner.replicas.holder_count(id) > 0 {
            return Ok(false);
        }
        let Some(peer) = self.peers_snapshot().into_iter().find(|p| p.node == holder) else {
            return Err(PlasmaError::Transport(format!("no peer for {holder}")));
        };
        // Pin the source copy so eviction cannot race the lender's copy.
        let Some(loc) = self.inner.core.get_local(id) else {
            return Err(PlasmaError::ObjectNotFound(id));
        };
        let payload = match self.framed_payload_for(&loc) {
            Ok(p) => p,
            Err(e) => {
                let _ = self.inner.core.release(id);
                return Err(e);
            }
        };
        let req = SpillAtReq {
            requester: self.inner.node,
            epoch: self.ring_epoch(),
            location: loc,
            payload,
        };
        let adopted = match self.peer_call(&peer, method::SPILL_AT, req.encode()) {
            // A garbled response is as ambiguous as a lost one: treat it
            // like Unreachable below instead of bailing out — an early
            // return here would leak the source pin taken above.
            Ok(body) => match SpillAtResp::decode(body) {
                Ok(resp) => {
                    self.maybe_adopt_epoch(holder, resp.epoch);
                    resp.status == SpillAtStatus::Adopted
                }
                Err(_) => false,
            },
            // Ambiguous outcome (request may have executed, response
            // lost): keep the local copy. If the lender did adopt, both
            // immutable copies coexist harmlessly until borrow
            // reconciliation drops the redundant replica.
            Err(PeerFail::Skipped) | Err(PeerFail::Unreachable(_)) => false,
            Err(PeerFail::Rpc(e)) => {
                let _ = self.inner.core.release(id);
                return Err(Self::rpc_err(e));
            }
        };
        if !adopted {
            self.inner.metrics.spills_refused.inc();
            self.inner.core.release(id)?;
            return Ok(false);
        }
        // The lender sealed its replica *before* we get here, so from
        // this point the delegation is the truth: record it, then drop
        // the local copy. Deletion is deferred — concurrent local
        // readers (and remote pins) drain first.
        self.inner.ledger.record_lent(id, holder, loc.total_size());
        self.sync_ledger_gauges();
        self.inner.core.release(id)?;
        let _ = self.inner.core.delete_deferred(id);
        if let Some(cache) = &self.inner.idcache {
            cache.invalidate(id);
        }
        self.inner.heat.clear(id);
        self.inner.metrics.spills_completed.inc();
        Ok(true)
    }

    /// One heat-driven rebalance pass: every object whose dominant
    /// remote reader accumulated at least `heat_min_hits` remote hits is
    /// delegated *to that reader*, converting its future remote reads
    /// into local ones. Returns the number of objects moved.
    pub fn rebalance_once(&self) -> Result<u64, PlasmaError> {
        let min_hits = self.inner.elastic.heat_min_hits;
        let mut moved = 0u64;
        for (id, reader, _) in self.inner.heat.drain_hot(min_hits) {
            if reader == self.inner.node
                || self.ring_owner(id) != Some(self.inner.node)
                || self.inner.ledger.lent_holder(id).is_some()
                || self.inner.replicas.holder_count(id) > 0
                || self.inner.core.peek(id).is_none()
            {
                continue;
            }
            if matches!(self.spill_to(id, reader), Ok(true)) {
                self.inner.metrics.rebalances.inc();
                moved += 1;
            }
        }
        Ok(moved)
    }

    /// Quiesce-time borrow-ledger reconciliation: report to every peer
    /// exactly which of its objects this node still holds borrowed, and
    /// act on the answer — replicas the owner declared redundant are
    /// dropped here, and the owner trims lent entries this node no
    /// longer honors. Heals every partial-spill outcome: a lost
    /// `SPILL_AT` response (holder sealed, owner never recorded the
    /// lease) re-installs the owner's lent entry; an owner that
    /// re-acquired a local copy retires the delegation.
    ///
    /// Like [`DisaggStore::reconcile_pins`], only sound while no spill
    /// or get traffic involving this node is in flight. Returns
    /// `(replicas dropped here, owner-side entries trimmed)`.
    pub fn reconcile_borrows(&self) -> Result<(u64, u64), PlasmaError> {
        let peers = self.peers_snapshot();
        let mut dropped = 0u64;
        let mut trimmed = 0u64;
        for peer in &peers {
            let req = BorrowReconcileReq {
                requester: self.inner.node,
                borrowed: self.inner.ledger.borrowed_from(peer.node),
            };
            match self.peer_call(peer, method::BORROW_RECONCILE, req.encode()) {
                Ok(body) => {
                    let resp = BorrowReconcileResp::decode(body)
                        .map_err(|e| PlasmaError::Protocol(e.to_string()))?;
                    trimmed += resp.trimmed;
                    for id in resp.drop {
                        let _ = self.inner.core.delete_deferred(id);
                        self.inner.ledger.remove_borrowed(id);
                        dropped += 1;
                    }
                }
                Err(PeerFail::Skipped) => {}
                Err(PeerFail::Unreachable(m)) => return Err(PlasmaError::PeerUnavailable(m)),
                Err(PeerFail::Rpc(e)) => return Err(Self::rpc_err(e)),
            }
        }
        self.sync_ledger_gauges();
        Ok((dropped, trimmed))
    }

    /// Forward a delete for a lent object to its holder, retiring the
    /// ledger entry once the holder confirms (or reports the replica
    /// already gone).
    fn delete_at_holder(&self, id: ObjectId, holder: NodeId) -> Result<(), PlasmaError> {
        let Some(peer) = self.peers_snapshot().into_iter().find(|p| p.node == holder) else {
            return Err(PlasmaError::Transport(format!("no peer for {holder}")));
        };
        match self.peer_call(&peer, method::DELETE_HELD, IdReq { id }.encode()) {
            Ok(_) => {}
            Err(PeerFail::Rpc(RpcError::Status(s))) if s.code == StatusCode::NotFound => {}
            Err(PeerFail::Rpc(RpcError::Status(s))) if s.code == StatusCode::FailedPrecondition => {
                return Err(PlasmaError::ObjectInUse(id));
            }
            Err(PeerFail::Rpc(e)) => return Err(Self::rpc_err(e)),
            Err(PeerFail::Skipped) => {
                return Err(PlasmaError::PeerUnavailable(format!(
                    "holder {} is down",
                    peer.name
                )));
            }
            Err(PeerFail::Unreachable(m)) => return Err(PlasmaError::PeerUnavailable(m)),
        }
        self.inner.ledger.remove_lent(id);
        self.sync_ledger_gauges();
        if let Some(cache) = &self.inner.idcache {
            cache.invalidate(id);
        }
        Ok(())
    }

    /// Parse the `retry_after_ms=N` hint an overloaded owner embeds in
    /// its `ResourceExhausted` status message.
    fn retry_after_from(message: &str, default_ms: u64) -> u64 {
        message
            .rsplit("retry_after_ms=")
            .next()
            .and_then(|tail| {
                let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
                digits.parse().ok()
            })
            .unwrap_or(default_ms)
    }

    fn peers_snapshot(&self) -> Vec<Peer> {
        self.inner.peers.read().clone()
    }

    /// Peers with the ring's computed owner of `id` moved to the front,
    /// so serial forwarding loops probe the likeliest holder first.
    fn peers_owner_first(&self, id: ObjectId) -> Vec<Peer> {
        let mut peers = self.peers_snapshot();
        if let Some(owner) = self.ring_owner(id) {
            if let Some(i) = peers.iter().position(|p| p.node == owner) {
                peers.swap(0, i);
            }
        }
        peers
    }

    fn rpc_err(e: RpcError) -> PlasmaError {
        match e {
            RpcError::Status(s) => PlasmaError::Protocol(format!("peer status: {s}")),
            RpcError::Transport(io) => PlasmaError::Transport(io.to_string()),
            RpcError::Deadline(d) => {
                PlasmaError::PeerUnavailable(format!("no response within {d:?}"))
            }
            RpcError::Protocol(m) => PlasmaError::Protocol(m),
        }
    }

    /// Liveness state of one peer, as seen by this node's failure detector.
    pub fn peer_state(&self, node: NodeId) -> PeerState {
        self.inner.health.state(node)
    }

    /// Failure-detector counters for one peer.
    pub fn peer_health_stats(&self, node: NodeId) -> PeerStats {
        self.inner.health.stats(node)
    }

    /// One guarded interconnect call: health admission, per-call deadline,
    /// bounded retries with backoff charged to the cluster clock.
    ///
    /// Definite answers — including error statuses — prove the peer is
    /// alive and reset its failure count; only transport-level failures
    /// (connection loss, expired deadline, `Unavailable`) indict it.
    fn peer_call(&self, peer: &Peer, method_id: u32, body: Bytes) -> Result<Bytes, PeerFail> {
        let inner = &self.inner;
        let mut attempts_left = match inner.health.admit(peer.node) {
            Admission::Skip => return Err(PeerFail::Skipped),
            Admission::Probe => 1, // one shot; failure re-arms the backoff window
            Admission::Attempt => inner.retry.max_attempts.max(1),
        };
        let mut retry_no = 0u32;
        loop {
            match peer
                .client
                .call_with_deadline(method_id, body.clone(), inner.call_deadline)
            {
                Ok(resp) => {
                    inner.health.record_success(peer.node);
                    self.flush_pending_releases(peer);
                    return Ok(resp);
                }
                Err(RpcError::Status(s)) if s.code != StatusCode::Unavailable => {
                    inner.health.record_success(peer.node);
                    return Err(PeerFail::Rpc(RpcError::Status(s)));
                }
                Err(e) if e.is_retryable() => {
                    let state = self.note_peer_failure(peer.node);
                    attempts_left -= 1;
                    if attempts_left == 0 || state == PeerState::Down {
                        return Err(PeerFail::Unreachable(format!(
                            "peer {} unreachable: {e}",
                            peer.name
                        )));
                    }
                    retry_no += 1;
                    inner.metrics.peer_retries.inc();
                    let backoff = inner.retry.backoff(retry_no, &mut inner.retry_rng.lock());
                    // Advance-to rather than charge: fan-out workers
                    // backing off concurrently model one overlapping
                    // wait, not N stacked on the shared cluster clock.
                    inner.clock.advance_to(inner.clock.now() + backoff);
                }
                Err(e) => {
                    // Protocol violation: a response arrived, but the
                    // connection is now suspect.
                    self.note_peer_failure(peer.node);
                    return Err(PeerFail::Rpc(e));
                }
            }
        }
    }

    /// Record a call failure against `node`, and — on the exact failure
    /// that completes an Up→Down transition — drop every id-cache hint
    /// pointing at it. A cached hint for a dead peer would otherwise
    /// steer each repeat `get` into a full call deadline before the
    /// broadcast fallback ran.
    fn note_peer_failure(&self, node: NodeId) -> PeerState {
        let was_down = self.inner.health.state(node) == PeerState::Down;
        let state = self.inner.health.record_failure(node);
        if state == PeerState::Down && !was_down {
            if let Some(cache) = &self.inner.idcache {
                cache.invalidate_peer(node);
            }
        }
        state
    }

    /// Retry parked RELEASEs against `peer` (see `Inner::pending_releases`).
    /// Invoked after a successful call proved the peer reachable; entries
    /// that fail again are re-queued. Uses the raw client rather than
    /// [`DisaggStore::peer_call`] so a flush never recurses into another
    /// flush.
    fn flush_pending_releases(&self, peer: &Peer) {
        let queued: Vec<ObjectId> = {
            let mut pending = self.inner.pending_releases.lock();
            if pending.is_empty() {
                return;
            }
            let mut queued = Vec::new();
            pending.retain(|(node, id)| {
                if *node == peer.node {
                    queued.push(*id);
                    false
                } else {
                    true
                }
            });
            self.inner
                .metrics
                .pending_releases
                .set(pending.len() as i64);
            queued
        };
        for id in queued {
            let req = ReleaseReq {
                requester: self.inner.node,
                id,
            };
            if peer
                .client
                .call_with_deadline(method::RELEASE, req.encode(), self.inner.call_deadline)
                .is_err()
            {
                self.park_release(peer.node, id);
            }
        }
    }

    /// Park a RELEASE against an unreachable peer for later retry,
    /// tracking the backlog gauge.
    fn park_release(&self, owner: NodeId, id: ObjectId) {
        let mut pending = self.inner.pending_releases.lock();
        pending.push((owner, id));
        self.inner
            .metrics
            .pending_releases
            .set(pending.len() as i64);
    }

    /// Releases that failed against an unreachable peer and await retry.
    /// Zero in steady state; tests assert no release is silently dropped.
    pub fn pending_release_count(&self) -> usize {
        self.inner.pending_releases.lock().len()
    }

    /// Run `f` against each of `peers` concurrently (scoped threads),
    /// preserving order. Each peer gets its own deadline/retry budget, so
    /// a broadcast with one hung peer costs one deadline — not one per
    /// position in a serial loop.
    fn fanout<T: Send>(&self, peers: &[Peer], f: impl Fn(&Peer) -> T + Sync) -> Vec<T> {
        match peers {
            [] => Vec::new(),
            [only] => vec![f(only)],
            _ => std::thread::scope(|s| {
                let f = &f;
                let handles: Vec<_> = peers.iter().map(|peer| s.spawn(move || f(peer))).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("peer fan-out thread panicked"))
                    .collect()
            }),
        }
    }

    /// Migrate a remote object into this node's local store (locality
    /// optimization: subsequent reads take the local path). The object is
    /// copied over the fabric while pinned, the owner's copy is deleted,
    /// and the local copy is sealed under the same id. Objects are
    /// immutable, so the brief window in which both copies exist is
    /// harmless; if another client still holds the owner's copy, migration
    /// aborts with [`PlasmaError::ObjectInUse`] and nothing changes.
    pub fn migrate_to_local(
        &self,
        id: ObjectId,
        timeout: Duration,
    ) -> Result<ObjectLocation, PlasmaError> {
        let result = self.migrate_inner(id, timeout);
        let m = &self.inner.metrics;
        match &result {
            Ok(_) => m.migrations_completed.inc(),
            Err(PlasmaError::ObjectInUse(_)) => m.migrations_aborted_in_use.inc(),
            Err(_) => m.migrations_failed.inc(),
        }
        result
    }

    fn migrate_inner(
        &self,
        id: ObjectId,
        timeout: Duration,
    ) -> Result<ObjectLocation, PlasmaError> {
        if let Some(loc) = self.inner.core.peek(id) {
            return Ok(loc); // already local
        }
        // Pinning lookup so the owner cannot evict mid-copy. The guard
        // releases the pin on every early exit below — without it, a
        // failed migration left the owner's copy pinned forever
        // (unevictable, undeletable).
        let found = ObjectStore::get(self, &[id], timeout)?;
        let Some(remote_loc) = found[0] else {
            return Err(PlasmaError::Timeout);
        };
        let pin = RemotePinGuard::new(self, id);
        if remote_loc.seg.owner == self.inner.node {
            // Sealed locally while we were looking: nothing to migrate.
            pin.release()?;
            return self
                .inner
                .core
                .peek(id)
                .ok_or(PlasmaError::ObjectNotFound(id));
        }
        let owner = remote_loc.seg.owner;

        // Copy the (immutable) bytes through the data plane — mapped
        // segments on the zero-copy backend, DATA_READ frames on the
        // framed fallback.
        let bytes = self
            .inner
            .data_plane
            .pull(&StoreLink(self), owner, &remote_loc)?;

        // Stage the local copy (bypassing the reserve handshake: the id is
        // legitimately owned by the cluster already). Aborted on any
        // failure before seal.
        let local_loc =
            self.inner
                .core
                .create(id, remote_loc.data_size, remote_loc.metadata_size)?;
        let staged = StagedCreateGuard::new(self, id);
        let local_map = self.inner.core.mapping_for(&local_loc)?;
        local_map.write_at(local_loc.offset, &bytes)?;

        // Drop our pin before sealing: once the copy is sealed under this
        // id, `remote_held` must no longer carry it or local releases
        // would be misrouted to the old owner. A failed RELEASE aborts the
        // staged copy — the owner's copy is untouched, nothing is lost.
        pin.release()?;

        // Seal the local copy *before* asking the owner to delete. From
        // here this node serves the object, so an ambiguous DELETE outcome
        // (executed on the owner, response lost) can no longer destroy the
        // only surviving copy.
        let loc = self.inner.core.seal(id)?;
        staged.disarm();
        self.inner.core.release(id)?; // migration's creator reference
        if let Some(cache) = &self.inner.idcache {
            cache.invalidate(id);
        }

        // Ask the owner to delete its copy — best effort, never at the
        // expense of the sealed local copy.
        let Some(peer) = self.peers_snapshot().into_iter().find(|p| p.node == owner) else {
            return Ok(loc);
        };
        match self.peer_call(&peer, method::DELETE, IdReq { id }.encode()) {
            Ok(_) => {}
            Err(PeerFail::Rpc(RpcError::Status(s))) if s.code == StatusCode::NotFound => {
                // The owner's copy is already gone: a retried DELETE whose
                // first attempt executed (response lost) reports NotFound,
                // and so does an owner that evicted once our pin dropped.
            }
            Err(PeerFail::Rpc(RpcError::Status(s))) if s.code == StatusCode::FailedPrecondition => {
                // Another client still reads the owner's copy: undo the
                // migration (contract: nothing changes). Best effort — if
                // a reader raced onto our local copy it stays, and the two
                // immutable copies coexist safely.
                let _ = self.inner.core.delete(id);
                return Err(PlasmaError::ObjectInUse(id));
            }
            Err(PeerFail::Rpc(_)) | Err(PeerFail::Skipped) | Err(PeerFail::Unreachable(_)) => {
                // Ambiguous or failed outcome: the owner may or may not
                // have deleted. The sealed local copy is authoritative
                // either way; a surviving owner copy lingers as immutable
                // garbage until deleted or evicted. Never abort the local
                // copy here — it may be the only one left.
            }
        }
        Ok(loc)
    }

    /// Cluster-wide object inventory: this store's sealed objects plus
    /// every reachable peer's, grouped by node, queried in parallel.
    /// Extends Plasma's `List` across the interconnect. Unreachable peers
    /// are omitted — the inventory is partial, not an error.
    pub fn global_list(&self) -> Result<Vec<(NodeId, Vec<ListEntry>)>, PlasmaError> {
        let mut out = Vec::with_capacity(self.peer_count() + 1);
        let local: Vec<ListEntry> = self
            .inner
            .core
            .list()
            .into_iter()
            .filter(|i| i.state == plasma::ObjectState::Sealed)
            .map(|i| ListEntry {
                id: i.id,
                data_size: i.data_size,
                metadata_size: i.metadata_size,
                ref_count: i.ref_count,
            })
            .collect();
        out.push((self.inner.node, local));
        let peers = self.peers_snapshot();
        let responses = self.fanout(&peers, |peer| {
            self.peer_call(peer, method::LIST, Bytes::new())
        });
        for response in responses {
            let Ok(body) = response else { continue };
            let resp = ListResp::decode(body)
                .map_err(|e| PlasmaError::Protocol(format!("list response: {e}")))?;
            out.push((resp.node, resp.entries));
        }
        Ok(out)
    }

    /// Resolve many objects in one batched pass — the multi-get hot path.
    ///
    /// Semantically identical to [`ObjectStore::get`] with the same id
    /// slice (which already batches: all ids a single peer owns travel in
    /// **one** `GET_MANY` round trip, not one RPC per id). This alias
    /// exists so callers reaching for a batch API find the batched
    /// guarantee spelled out: `N` small objects held by one owner cost
    /// one RPC, and the ids-per-RPC distribution is observable as the
    /// `disagg.get_many.batch_size` histogram.
    pub fn batch_get(
        &self,
        ids: &[ObjectId],
        timeout: Duration,
    ) -> Result<Vec<Option<ObjectLocation>>, PlasmaError> {
        ObjectStore::get(self, ids, timeout)
    }

    /// One remote-lookup round for the `None` slots of `out`: consult the
    /// id cache (targeted `GET_MANY` batches or direct reads), then
    /// broadcast a batched `GET_MANY` to peers for the rest — in
    /// parallel. Unreachable peers contribute nothing; their objects
    /// simply stay unresolved this round, so a dead peer degrades `get`
    /// to a miss instead of an error.
    fn remote_lookup_pass(&self, ids: &[ObjectId], out: &mut [Option<ObjectLocation>]) {
        let mut missing: Vec<ObjectId> = ids
            .iter()
            .zip(out.iter())
            .filter(|(_, o)| o.is_none())
            .map(|(id, _)| *id)
            .collect();
        if missing.is_empty() {
            return;
        }
        let pass_started = Instant::now();
        let mut found: HashMap<ObjectId, ObjectLocation> = HashMap::new();

        // Consult the id cache first.
        if let Some(cache) = &self.inner.idcache {
            let mut targeted: HashMap<u16, Vec<ObjectId>> = HashMap::new();
            missing.retain(|id| match cache.lookup(*id) {
                Some(entry) if cache.mode() == CacheMode::Direct => {
                    // Direct mode: trust the cached location outright — no
                    // RPC, no pin (the paper's corruption hazard).
                    self.inner.metrics.idcache_hits.inc();
                    self.inner
                        .counters
                        .direct_cache_reads
                        .fetch_add(1, Ordering::Relaxed);
                    found.insert(*id, entry.location);
                    false
                }
                Some(entry) => {
                    self.inner.metrics.idcache_hits.inc();
                    targeted.entry(entry.peer.0).or_default().push(*id);
                    false
                }
                None => {
                    self.inner.metrics.idcache_misses.inc();
                    true
                }
            });
            let peers = self.peers_snapshot();
            for (peer_node, ids) in targeted {
                match peers.iter().find(|p| p.node.0 == peer_node) {
                    Some(peer) => match self.get_many_rpc(peer, &ids, true) {
                        Ok(resp) => {
                            self.absorb_lookup(peer, resp.found().copied().collect(), &mut found);
                            self.follow_redirects(&resp, &mut found);
                            // Cache pointed at a peer that no longer has
                            // some ids: invalidate and re-broadcast those.
                            for id in ids {
                                if !found.contains_key(&id) {
                                    cache.invalidate(id);
                                    missing.push(id);
                                }
                            }
                        }
                        Err(_) => {
                            // Peer unreachable: it may still own the
                            // objects, so keep the cache entries and let
                            // the broadcast ask the others.
                            missing.extend(ids);
                        }
                    },
                    None => missing.extend(ids),
                }
            }
        }

        // Ring-targeted phase: resolve each still-missing id's rendezvous
        // owner locally (zero RPCs) and ask exactly that peer. Ids the
        // owner does not hold — migrated off-ring, not yet created, or
        // the owner is unreachable — fall through to the broadcast, as do
        // ids this node owns itself (the local pass already missed them,
        // so if they exist at all they live off-ring).
        let ring = self.inner.ring.read().clone();
        if let Some(ring) = ring {
            let mut by_owner: HashMap<NodeId, Vec<ObjectId>> = HashMap::new();
            let mut fallback: Vec<ObjectId> = Vec::new();
            let mut lent: Vec<(ObjectId, NodeId)> = Vec::new();
            for id in missing.drain(..) {
                if found.contains_key(&id) {
                    continue;
                }
                match ring.owner_of(id) {
                    Some(owner) if owner != self.inner.node => {
                        by_owner.entry(owner).or_default().push(id);
                    }
                    // Self-owned miss: if this node lent the id away, its
                    // own ledger is the redirect — chase the holder like
                    // a `Moved` answer instead of broadcasting (the
                    // holder hides borrowed replicas from broadcasts).
                    _ => match self.inner.ledger.lent_holder(id) {
                        Some(holder) => lent.push((id, holder)),
                        None => fallback.push(id),
                    },
                }
            }
            let peers = self.peers_snapshot();
            let mut hits = 0u64;
            if !lent.is_empty() {
                let own_ledger = GetManyResp {
                    entries: lent
                        .iter()
                        .map(|&(id, holder)| GetManyEntry {
                            id,
                            status: GetManyStatus::Moved,
                            location: None,
                            moved_to: Some(holder),
                        })
                        .collect(),
                    epoch: self.ring_epoch(),
                };
                self.follow_redirects(&own_ledger, &mut found);
                for (id, _) in lent {
                    if found.contains_key(&id) {
                        hits += 1;
                    } else {
                        fallback.push(id);
                    }
                }
            }
            for (owner, group) in by_owner {
                match peers.iter().find(|p| p.node == owner) {
                    Some(peer) => match self.get_many_rpc(peer, &group, false) {
                        Ok(resp) => {
                            self.maybe_adopt_epoch(owner, resp.epoch);
                            self.absorb_lookup(peer, resp.found().copied().collect(), &mut found);
                            // Redirect-resolved ids count as ring hits:
                            // the owner *did* answer for them, one hop on.
                            self.follow_redirects(&resp, &mut found);
                            for id in group {
                                if found.contains_key(&id) {
                                    hits += 1;
                                } else {
                                    fallback.push(id);
                                }
                            }
                        }
                        Err(_) => fallback.extend(group),
                    },
                    None => fallback.extend(group),
                }
            }
            self.note_ring_hits(hits);
            self.note_ring_fallbacks(fallback.len() as u64);
            missing = fallback;
        }

        // Broadcast to every peer, in parallel, for whatever is still
        // missing; absorb responses (and their pins) sequentially.
        let remaining: Vec<ObjectId> = missing
            .iter()
            .filter(|id| !found.contains_key(id))
            .copied()
            .collect();
        if !remaining.is_empty() {
            let peers = self.peers_snapshot();
            let responses = self.fanout(&peers, |peer| self.get_many_rpc(peer, &remaining, false));
            // Absorb every direct answer before chasing any redirect: the
            // holder of a spilled object answers this same broadcast with
            // `Pinned`, so chasing the owner's `Moved` first would pin the
            // object at the holder twice while the caller releases once.
            let answered: Vec<(&Peer, GetManyResp)> = peers
                .iter()
                .zip(responses)
                .filter_map(|(peer, response)| response.ok().map(|resp| (peer, resp)))
                .collect();
            for (peer, resp) in &answered {
                self.maybe_adopt_epoch(peer.node, resp.epoch);
                self.absorb_lookup(peer, resp.found().copied().collect(), &mut found);
            }
            for (_, resp) in &answered {
                self.follow_redirects(resp, &mut found);
            }
        }

        self.inner
            .metrics
            .lookup_fanout
            .record_duration(pass_started.elapsed());
        for (slot, id) in out.iter_mut().zip(ids) {
            if slot.is_none() {
                if let Some(loc) = found.get(id) {
                    *slot = Some(*loc);
                }
            }
        }
    }

    /// Chase the `Moved` entries of one GET_MANY response: a ring owner
    /// that spilled an id answers with the holder's address, and this
    /// follow-up asks the holder directly — one extra hop, batched per
    /// holder. Absorbing the holder's answer also inserts it into the id
    /// cache, so the redirect is paid once; repeat gets go straight to
    /// the holder.
    fn follow_redirects(&self, resp: &GetManyResp, found: &mut HashMap<ObjectId, ObjectLocation>) {
        let mut by_holder: HashMap<NodeId, Vec<ObjectId>> = HashMap::new();
        for (id, holder) in resp.moved() {
            if found.contains_key(&id) {
                continue;
            }
            if holder == self.inner.node {
                // The redirect points home: this node holds the replica
                // borrowed. The local fast path hides borrowed objects,
                // but an owner-sanctioned redirect may serve them.
                if let Some(loc) = self.inner.core.get_local(id) {
                    self.inner.metrics.redirects_followed.inc();
                    found.insert(id, loc);
                }
                continue;
            }
            by_holder.entry(holder).or_default().push(id);
        }
        if by_holder.is_empty() {
            return;
        }
        let peers = self.peers_snapshot();
        for (holder, ids) in by_holder {
            let Some(peer) = peers.iter().find(|p| p.node == holder) else {
                continue;
            };
            if let Ok(resp) = self.get_many_rpc(peer, &ids, true) {
                self.maybe_adopt_epoch(holder, resp.epoch);
                self.inner.metrics.redirects_followed.add(ids.len() as u64);
                self.absorb_lookup(peer, resp.found().copied().collect(), found);
            }
        }
    }

    /// Issue one pinning GET_MANY RPC for `ids` to one peer: every id the
    /// peer holds sealed comes back pinned (attributed to this node) with
    /// its fabric descriptor attached — one round trip regardless of how
    /// many ids the batch carries. Counted under `lookup_rpcs`, and the
    /// batch size is recorded in `disagg.get_many.batch_size`.
    fn get_many_rpc(
        &self,
        peer: &Peer,
        ids: &[ObjectId],
        redirected: bool,
    ) -> Result<GetManyResp, PeerFail> {
        if ids.is_empty() {
            return Ok(GetManyResp {
                entries: Vec::new(),
                epoch: self.ring_epoch(),
            });
        }
        let req = GetManyReq {
            requester: self.inner.node,
            ids: ids.to_vec(),
            epoch: self.ring_epoch(),
            redirected,
        };
        let result = self.peer_call(peer, method::GET_MANY, req.encode());
        if !matches!(result, Err(PeerFail::Skipped)) {
            self.inner
                .counters
                .lookup_rpcs
                .fetch_add(1, Ordering::Relaxed);
            self.inner.metrics.get_many_batch.record(ids.len() as u64);
        }
        GetManyResp::decode(result?)
            .map_err(|e| PeerFail::Rpc(RpcError::Protocol(format!("get_many response: {e}"))))
    }

    /// Fold the locations one peer returned (with pins taken on our
    /// behalf) into `found`, ledgering each pin under that peer. If two
    /// peers answered for the same id (a migration raced the broadcast),
    /// the first absorbed pin wins and the duplicate is released back to
    /// the losing peer. The *same* peer answering an id twice is not a
    /// race but a batch that legitimately carried the id twice (the
    /// owner pinned once per instance, and the caller will release once
    /// per filled slot) — those extra pins are ledgered, not released.
    fn absorb_lookup(
        &self,
        peer: &Peer,
        pinned: Vec<ObjectLocation>,
        found: &mut HashMap<ObjectId, ObjectLocation>,
    ) {
        let mut duplicates: Vec<ObjectId> = Vec::new();
        {
            let mut held = self.inner.remote_held.lock();
            for loc in pinned {
                if let Some(&winner_loc) = found.get(&loc.id) {
                    let same_peer = held
                        .get_mut(&loc.id)
                        .and_then(|entries| entries.iter_mut().find(|(node, _)| *node == peer.node))
                        .map(|entry| entry.1 += 1)
                        .is_some();
                    if !same_peer {
                        duplicates.push(loc.id);
                        // The losing answer must not survive in the id
                        // cache: a concurrent pass may have cached this
                        // peer between our winner's insert and now, and a
                        // stale hint at the loser misroutes (and, in
                        // Direct mode, corrupts) every repeat get once
                        // its pin is released below. Repoint at the
                        // ledgered winner atomically — `realign` leaves
                        // any fresher third-party entry alone.
                        if let Some(cache) = &self.inner.idcache {
                            if let Some(&(winner, _)) =
                                held.get(&loc.id).and_then(|entries| entries.first())
                            {
                                cache.realign(
                                    loc.id,
                                    peer.node,
                                    CachedEntry {
                                        location: winner_loc,
                                        peer: winner,
                                    },
                                );
                            }
                        }
                    }
                    continue;
                }
                self.inner
                    .counters
                    .remote_found
                    .fetch_add(1, Ordering::Relaxed);
                // Ledger the pin under the owner that actually took it: if
                // the object moved between lookups (migration race), a pin
                // on the new owner must not be merged into — and later
                // "released" against — the stale owner's count.
                let entries = held.entry(loc.id).or_default();
                match entries.iter_mut().find(|(node, _)| *node == peer.node) {
                    Some(entry) => entry.1 += 1,
                    None => entries.push((peer.node, 1)),
                }
                if let Some(cache) = &self.inner.idcache {
                    cache.insert(CachedEntry {
                        location: loc,
                        peer: peer.node,
                    });
                }
                found.insert(loc.id, loc);
            }
        }
        for id in duplicates {
            let req = ReleaseReq {
                requester: self.inner.node,
                id,
            };
            match self.peer_call(peer, method::RELEASE, req.encode()) {
                Ok(_) => {}
                Err(PeerFail::Skipped) | Err(PeerFail::Unreachable(_)) | Err(PeerFail::Rpc(_)) => {
                    // The losing peer did not confirm the release (dead,
                    // unreachable, or a definite error): park it and
                    // retry after the next successful call to that peer,
                    // instead of leaking its pin permanently.
                    self.park_release(peer.node, id);
                }
            }
        }
    }

    /// Ring-routed `create`: compute the id's owner locally, allocate
    /// there. Local owner → plain core create (the core's id map is the
    /// uniqueness arbiter). Remote owner → one point-to-point `CREATE_AT`;
    /// the owner stages the object, pins the creator reference to this
    /// node, and returns the fabric descriptor so the client writes the
    /// payload straight through the fabric. A `WrongOwner` answer means
    /// our membership epoch is stale: adopt the owner's table and re-route
    /// once.
    fn create_via_ring(
        &self,
        id: ObjectId,
        data_size: u64,
        metadata_size: u64,
    ) -> Result<ObjectLocation, PlasmaError> {
        for _ in 0..2 {
            let owner = {
                let ring = self.inner.ring.read();
                let ring = ring.as_ref().expect("create_via_ring requires a ring");
                ring.owner_of(id)
            };
            let Some(owner) = owner else {
                return Err(PlasmaError::PeerUnavailable(
                    "membership table is empty".to_string(),
                ));
            };
            if owner == self.inner.node {
                self.check_admission()?;
                return self.inner.core.create(id, data_size, metadata_size);
            }
            let Some(peer) = self.peers_snapshot().into_iter().find(|p| p.node == owner) else {
                return Err(PlasmaError::PeerUnavailable(format!(
                    "no interconnect peer for ring owner {owner}"
                )));
            };
            let req = CreateAtReq {
                requester: self.inner.node,
                epoch: self.ring_epoch(),
                id,
                data_size,
                metadata_size,
            };
            let body = match self.peer_call(&peer, method::CREATE_AT, req.encode()) {
                Ok(body) => body,
                // Uniqueness lives at the owner, so an unreachable owner
                // fails the create outright — exactly like the reserve
                // protocol, a create never proceeds on a guess.
                Err(PeerFail::Skipped) => {
                    return Err(PlasmaError::PeerUnavailable(format!(
                        "peer {} is down",
                        peer.name
                    )))
                }
                Err(PeerFail::Unreachable(m)) => return Err(PlasmaError::PeerUnavailable(m)),
                // Typed overload rejection from the owner's admission
                // gate: surface it as `Overloaded` with the owner's
                // backoff hint so callers can retry instead of failing.
                Err(PeerFail::Rpc(RpcError::Status(s)))
                    if s.code == StatusCode::ResourceExhausted =>
                {
                    return Err(PlasmaError::Overloaded {
                        retry_after_ms: Self::retry_after_from(
                            &s.message,
                            self.inner.elastic.retry_after_ms,
                        ),
                    })
                }
                Err(PeerFail::Rpc(e)) => return Err(Self::rpc_err(e)),
            };
            let resp = CreateAtResp::decode(body)
                .map_err(|e| PlasmaError::Protocol(format!("create_at response: {e}")))?;
            match resp.status {
                CreateAtStatus::Ok => {
                    let loc = resp.location.ok_or_else(|| {
                        PlasmaError::Protocol("create_at: Ok without location".to_string())
                    })?;
                    // Remember the owner so seal/abort route point-to-
                    // point. The creator's reference lives entirely at
                    // the owner (pinned to us) and is consumed by the
                    // SEAL_AT / ABORT_AT that ends the staging — no
                    // requester-side hold to ledger.
                    self.inner.staged_out.lock().insert(id, owner);
                    return Ok(loc);
                }
                CreateAtStatus::Exists => return Err(PlasmaError::ObjectExists(id)),
                CreateAtStatus::WrongOwner => {
                    self.maybe_adopt_epoch(owner, resp.epoch);
                }
            }
        }
        Err(PlasmaError::PeerUnavailable(format!(
            "ring ownership of {id} unsettled (membership change in flight)"
        )))
    }

    /// Seal a create that was forwarded to a remote ring owner. The
    /// owner seals *and* consumes the creator's reference in one RPC, so
    /// the client's trailing release (plasma's put is create → write →
    /// seal → release) completes locally via a waiver instead of a
    /// second network call that could fail mid-put and strand the pin.
    /// `SEAL_AT` is idempotent on the owner, so a lost response is safe
    /// to retry; an owner that became unreachable leaves its staged
    /// orphan to quiesce-time reconciliation (which aborts it).
    fn seal_forwarded(&self, id: ObjectId, owner: NodeId) -> Result<ObjectLocation, PlasmaError> {
        let Some(peer) = self.peers_snapshot().into_iter().find(|p| p.node == owner) else {
            return Err(PlasmaError::PeerUnavailable(format!(
                "no interconnect peer for owner {owner}"
            )));
        };
        let req = ForwardReq {
            requester: self.inner.node,
            epoch: self.ring_epoch(),
            id,
        };
        match self.peer_call(&peer, method::SEAL_AT, req.encode()) {
            Ok(body) => {
                let resp = CreateAtResp::decode(body)
                    .map_err(|e| PlasmaError::Protocol(format!("seal_at response: {e}")))?;
                let loc = resp.location.ok_or_else(|| {
                    PlasmaError::Protocol("seal_at: response without location".to_string())
                })?;
                self.inner.staged_out.lock().remove(&id);
                self.inner.release_waivers.lock().insert(id);
                Ok(loc)
            }
            Err(PeerFail::Skipped) | Err(PeerFail::Unreachable(_)) => {
                // The owner is unreachable: the object cannot be sealed
                // now. Drop the requester-side staging entry so quiesce
                // accounting stays clean; the owner-side staged orphan
                // is aborted by pin reconciliation when the pair next
                // quiesces.
                self.inner.staged_out.lock().remove(&id);
                Err(PlasmaError::PeerUnavailable(format!(
                    "owner {} unreachable while sealing {id}",
                    peer.name
                )))
            }
            Err(PeerFail::Rpc(e)) => Err(Self::rpc_err(e)),
        }
    }

    /// Uninstrumented body of [`ObjectStore::get`]. Slots resolved by a
    /// remote lookup round are flagged in `remote_slots` so the wrapper
    /// can split its latency recording local-hit / remote-hit / miss.
    fn get_inner(
        &self,
        ids: &[ObjectId],
        timeout: Duration,
        remote_slots: &mut [bool],
    ) -> Result<Vec<Option<ObjectLocation>>, PlasmaError> {
        let deadline = Instant::now() + timeout;
        let mut out: Vec<Option<ObjectLocation>> = vec![None; ids.len()];
        loop {
            // Pass 1: local, non-blocking (pins found objects). Borrowed
            // replicas are excluded — they serve only owner-sanctioned
            // redirects, which the remote pass below obtains.
            for (slot, id) in out.iter_mut().zip(ids) {
                if slot.is_none() && self.inner.ledger.borrowed_owner(*id).is_none() {
                    *slot = self.inner.core.get_local(*id);
                    // A held replica serving a local get is the whole
                    // point of replication: a remote round trip the hot
                    // reader no longer pays. (Safe to serve without
                    // consulting the owner — invalidation runs *before*
                    // the owner's delete, so a live replica implies the
                    // object still exists.)
                    if slot.is_some() && self.inner.replicas.replica_owner(*id).is_some() {
                        self.inner.metrics.replica_local_hits.inc();
                    }
                }
            }
            if out.iter().all(Option::is_some) {
                return Ok(out);
            }

            // Pass 2: remote lookup for misses (degrades gracefully when
            // peers are unreachable — their objects just stay missing).
            if self.inner.lookup_remote {
                let filled_before: Vec<bool> = out.iter().map(Option::is_some).collect();
                self.remote_lookup_pass(ids, &mut out);
                for (flag, (was, slot)) in remote_slots
                    .iter_mut()
                    .zip(filled_before.iter().zip(out.iter()))
                {
                    if !*was && slot.is_some() {
                        *flag = true;
                    }
                }
                if out.iter().all(Option::is_some) {
                    return Ok(out);
                }
            }

            // Pass 3: wait briefly for local seals, then re-poll. The wait
            // is bounded so objects sealed *remotely* after our lookup are
            // discovered by the next remote pass.
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Ok(out);
            }
            let remaining: Vec<ObjectId> = ids
                .iter()
                .zip(&out)
                .filter(|(_, o)| o.is_none())
                .map(|(id, _)| *id)
                .collect();
            let wait = if self.inner.lookup_remote && self.peer_count() > 0 {
                left.min(REMOTE_POLL)
            } else {
                left
            };
            let waited = self.inner.core.get_wait(&remaining, wait);
            let mut it = waited.into_iter();
            for (slot, id) in out.iter_mut().zip(ids) {
                if slot.is_none() {
                    let got = it.next().flatten();
                    if self.inner.ledger.borrowed_owner(*id).is_none() {
                        *slot = got;
                    } else if got.is_some() {
                        // The wait pinned a hidden borrowed replica —
                        // release it and leave the slot for the remote
                        // pass (the owner decides whether it's served).
                        let _ = self.inner.core.release(*id);
                    }
                }
            }
            if out.iter().all(Option::is_some) || Instant::now() >= deadline {
                return Ok(out);
            }
        }
    }
}

/// The store's control channel, lent to the data-plane backend: calls
/// ride the same guarded peer-call machinery (health admission,
/// deadlines, bounded retries) as every other interconnect RPC.
struct StoreLink<'a>(&'a DisaggStore);

impl ControlLink for StoreLink<'_> {
    fn local_node(&self) -> NodeId {
        self.0.inner.node
    }

    fn call(&self, peer: NodeId, method: u32, body: Bytes) -> Result<Bytes, PlasmaError> {
        let Some(p) = self.0.peers_snapshot().into_iter().find(|p| p.node == peer) else {
            return Err(PlasmaError::Transport(format!("no peer for {peer}")));
        };
        match self.0.peer_call(&p, method, body) {
            Ok(b) => Ok(b),
            Err(PeerFail::Skipped) => Err(PlasmaError::PeerUnavailable(format!(
                "peer {} is down",
                p.name
            ))),
            Err(PeerFail::Unreachable(m)) => Err(PlasmaError::PeerUnavailable(m)),
            Err(PeerFail::Rpc(e)) => Err(DisaggStore::rpc_err(e)),
        }
    }
}

/// Releases a pinned remote object when dropped, unless released
/// explicitly. Keeps error paths from leaking owner-side pins.
struct RemotePinGuard<'a> {
    store: &'a DisaggStore,
    id: ObjectId,
    armed: bool,
}

impl<'a> RemotePinGuard<'a> {
    fn new(store: &'a DisaggStore, id: ObjectId) -> Self {
        RemotePinGuard {
            store,
            id,
            armed: true,
        }
    }

    /// Release the pin now, surfacing any error.
    fn release(mut self) -> Result<(), PlasmaError> {
        self.armed = false;
        ObjectStore::release(self.store, self.id)
    }
}

impl Drop for RemotePinGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = ObjectStore::release(self.store, self.id);
        }
    }
}

/// Aborts a staged (created but unsealed) local object when dropped,
/// unless disarmed. Keeps error paths from leaking half-written copies.
struct StagedCreateGuard<'a> {
    store: &'a DisaggStore,
    id: ObjectId,
    armed: bool,
}

impl<'a> StagedCreateGuard<'a> {
    fn new(store: &'a DisaggStore, id: ObjectId) -> Self {
        StagedCreateGuard {
            store,
            id,
            armed: true,
        }
    }

    fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for StagedCreateGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.store.inner.core.abort(self.id);
        }
    }
}

impl std::fmt::Debug for DisaggStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DisaggStore")
            .field("node", &self.inner.node)
            .field("peers", &self.peer_count())
            .finish()
    }
}

impl ObjectStore for DisaggStore {
    fn create(
        &self,
        id: ObjectId,
        data_size: u64,
        metadata_size: u64,
    ) -> Result<ObjectLocation, PlasmaError> {
        let started = Instant::now();
        if self.inner.core.exists_any_state(id) {
            return Err(PlasmaError::ObjectExists(id));
        }
        // An object this node lent out still exists — the bytes just
        // live at the holder. Re-creating it here would fork the id.
        if self.inner.ledger.lent_holder(id).is_some() {
            return Err(PlasmaError::ObjectExists(id));
        }
        // Outstanding replicas likewise: even if the owner copy was
        // evicted, a holder still serves the old bytes — re-creating
        // the id here would fork it against those replicas.
        if self.inner.replicas.holder_count(id) > 0 {
            return Err(PlasmaError::ObjectExists(id));
        }
        // Singleton cluster: no peer could hold or contest the id, so the
        // local existence check above *is* the uniqueness check. Short-
        // circuit before any reserve bookkeeping — the reserve counter
        // must stay at zero when there is nobody to reserve against.
        if self.inner.peers.read().is_empty() {
            self.check_admission()?;
            let loc = self.inner.core.create(id, data_size, metadata_size)?;
            self.inner.metrics.create.record_duration(started.elapsed());
            return Ok(loc);
        }
        // Ring placement: the id's owner is a local computation, and
        // uniqueness is owner-local — no reserve broadcast at all.
        if self.ring_epoch() > 0 {
            let loc = self.create_via_ring(id, data_size, metadata_size)?;
            self.inner.metrics.create.record_duration(started.elapsed());
            return Ok(loc);
        }
        self.check_admission()?;
        if !self.inner.reservations.begin_local(id) {
            return Err(PlasmaError::ObjectExists(id));
        }
        // Reserve the id on every peer in parallel (paper: "on object
        // creation, RPC calls are used to ensure the uniqueness of object
        // identifiers"). Uniqueness needs *every* peer's confirmation, so
        // this is the one broadcast that cannot degrade: an unreachable
        // peer fails the create with `PeerUnavailable` rather than risk a
        // duplicate id materializing when the peer comes back.
        let peers = self.peers_snapshot();
        let req_body = ReserveReq {
            requester: self.inner.node,
            id,
        }
        .encode();
        let results = self.fanout(&peers, |peer| {
            let result = self.peer_call(peer, method::RESERVE, req_body.clone());
            if !matches!(result, Err(PeerFail::Skipped)) {
                self.inner
                    .counters
                    .reserve_rpcs
                    .fetch_add(1, Ordering::Relaxed);
            }
            result
        });
        let mut denied = false;
        let mut unavailable: Option<String> = None;
        let mut failed: Option<PlasmaError> = None;
        for (peer, result) in peers.iter().zip(results) {
            match result {
                Ok(body) => match ReserveResp::decode(body) {
                    Ok(ReserveResp { granted: true }) => {}
                    Ok(ReserveResp { granted: false }) => denied = true,
                    Err(e) => {
                        if failed.is_none() {
                            failed = Some(PlasmaError::Protocol(format!("reserve response: {e}")));
                        }
                    }
                },
                Err(PeerFail::Skipped) => {
                    if unavailable.is_none() {
                        unavailable = Some(format!("peer {} is down", peer.name));
                    }
                }
                Err(PeerFail::Unreachable(m)) => {
                    if unavailable.is_none() {
                        unavailable = Some(m);
                    }
                }
                Err(PeerFail::Rpc(e)) => {
                    if failed.is_none() {
                        failed = Some(Self::rpc_err(e));
                    }
                }
            }
        }
        // A definite denial outranks unavailability: the id provably
        // exists somewhere, so report that.
        if denied {
            self.inner.reservations.end_local(id);
            return Err(PlasmaError::ObjectExists(id));
        }
        if let Some(e) = failed {
            self.inner.reservations.end_local(id);
            return Err(e);
        }
        if let Some(m) = unavailable {
            self.inner.reservations.end_local(id);
            return Err(PlasmaError::PeerUnavailable(m));
        }
        let loc = match self.inner.core.create(id, data_size, metadata_size) {
            Ok(loc) => loc,
            Err(e) => {
                self.inner.reservations.end_local(id);
                return Err(e);
            }
        };
        // If a lower-id node won a concurrent race while our reservations
        // were in flight, yield: undo the allocation.
        if self.inner.reservations.end_local(id) {
            let _ = self.inner.core.abort(id);
            return Err(PlasmaError::ObjectExists(id));
        }
        self.inner.metrics.create.record_duration(started.elapsed());
        Ok(loc)
    }

    fn seal(&self, id: ObjectId) -> Result<ObjectLocation, PlasmaError> {
        // A create forwarded to a remote ring owner seals there too.
        let staged_owner = self.inner.staged_out.lock().get(&id).copied();
        match staged_owner {
            Some(owner) => self.seal_forwarded(id, owner),
            None => self.inner.core.seal(id),
        }
    }

    fn get(
        &self,
        ids: &[ObjectId],
        timeout: Duration,
    ) -> Result<Vec<Option<ObjectLocation>>, PlasmaError> {
        let started = Instant::now();
        let mut remote_slots = vec![false; ids.len()];
        let result = self.get_inner(ids, timeout, &mut remote_slots);
        if let Ok(out) = &result {
            // One sample per requested id, classified by how (whether) it
            // resolved. The whole-call elapsed time is attributed to each
            // id: that is the latency a caller of a 1-id get observed.
            let elapsed = started.elapsed();
            let m = &self.inner.metrics;
            for (slot, was_remote) in out.iter().zip(&remote_slots) {
                let hist = match (slot.is_some(), *was_remote) {
                    (true, true) => &m.get_remote_hit,
                    (true, false) => &m.get_local_hit,
                    (false, _) => &m.get_miss,
                };
                hist.record_duration(elapsed);
            }
        }
        result
    }

    fn release(&self, id: ObjectId) -> Result<(), PlasmaError> {
        // Remote-held references are fed back to their owners over RPC.
        // Each ledger entry is decremented optimistically and restored if
        // the RPC fails — otherwise the pin would be lost locally while
        // the owner still counts it, leaving the object unevictable
        // forever. The restore is ambiguous, though: a release whose
        // *response* was lost did land, so the restored entry is a
        // phantom the owner no longer counts. The owner's ack (`false` =
        // no pin ledgered for us) detects exactly that case, and the
        // loop re-routes this release at the next candidate — another
        // owner's entry or the local refcount — instead of letting a
        // phantom entry swallow a release some real pin needed.
        let mut phantom = false;
        loop {
            let owner = {
                let mut held = self.inner.remote_held.lock();
                match held.get_mut(&id) {
                    Some(entries) => {
                        // Pins on the same immutable object are fungible:
                        // any owner's count may be drained first, as long
                        // as each owner eventually receives exactly its
                        // own total. Prefer one that isn't Down so a dead
                        // peer doesn't block releasing pins held on live
                        // ones.
                        let i = entries
                            .iter()
                            .position(|(node, _)| self.inner.health.state(*node) != PeerState::Down)
                            .unwrap_or(0);
                        let node = entries[i].0;
                        entries[i].1 -= 1;
                        if entries[i].1 == 0 {
                            entries.remove(i);
                        }
                        if entries.is_empty() {
                            held.remove(&id);
                        }
                        Some(node)
                    }
                    None => None,
                }
            };
            let Some(owner) = owner else {
                break;
            };
            let result = (|| {
                let peer = self
                    .peers_snapshot()
                    .into_iter()
                    .find(|p| p.node == owner)
                    .ok_or_else(|| PlasmaError::Transport(format!("no peer for {owner}")))?;
                let req = ReleaseReq {
                    requester: self.inner.node,
                    id,
                };
                match self.peer_call(&peer, method::RELEASE, req.encode()) {
                    Ok(body) => Ok(BoolResp::decode(body).map(|r| r.value).unwrap_or(true)),
                    Err(PeerFail::Skipped) | Err(PeerFail::Unreachable(_)) => Err(
                        PlasmaError::PeerUnavailable(format!("owner {} unreachable", peer.name)),
                    ),
                    Err(PeerFail::Rpc(e)) => Err(Self::rpc_err(e)),
                }
            })();
            match result {
                Ok(true) => {
                    self.inner
                        .counters
                        .releases_forwarded
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Ok(false) => {
                    // Phantom entry: the owner executed an earlier release
                    // whose response we never saw. The stale entry is
                    // already gone from the ledger — route this release at
                    // the next candidate.
                    phantom = true;
                }
                Err(e) => {
                    // Restore the decrement: the owner still counts this
                    // pin, so we must keep counting it too.
                    let mut held = self.inner.remote_held.lock();
                    let entries = held.entry(id).or_default();
                    match entries.iter_mut().find(|(node, _)| *node == owner) {
                        Some(entry) => entry.1 += 1,
                        None => entries.push((owner, 1)),
                    }
                    return Err(e);
                }
            }
        }
        // The creator's reference of a forwarded create was consumed by
        // SEAL_AT at the owner; the put flow's trailing release is
        // satisfied here without touching the network.
        if self.inner.release_waivers.lock().remove(&id) {
            return Ok(());
        }
        if self.inner.core.exists_any_state(id) {
            return match self.inner.core.release(id) {
                Ok(()) => Ok(()),
                // On the phantom chain the pin this release pairs with may
                // already be gone (healed by an earlier duplicated
                // delivery); a missing refcount is success, not an error.
                Err(_) if phantom => Ok(()),
                Err(e) => Err(e),
            };
        }
        // Direct-mode cache reads hold no reference: release is a no-op.
        if let Some(cache) = &self.inner.idcache {
            if cache.mode() == CacheMode::Direct && cache.lookup(id).is_some() {
                return Ok(());
            }
        }
        if phantom {
            return Ok(());
        }
        Err(PlasmaError::ObjectNotFound(id))
    }

    fn delete(&self, id: ObjectId) -> Result<(), PlasmaError> {
        // A borrowed or replicated copy is not deleted locally: the
        // owner (ring authority) runs the delete — for a read replica
        // that means invalidating every holder, us included, before its
        // own copy goes. Deleting just the local replica would leave
        // the object alive everywhere else.
        let delegated = self.inner.ledger.borrowed_owner(id).is_some()
            || self.inner.replicas.replica_owner(id).is_some();
        if !delegated && self.inner.core.exists_any_state(id) {
            // Invalidate every replica *before* the local delete: if any
            // holder cannot confirm, the delete fails with the object
            // intact — no stale replica can survive a successful delete.
            self.invalidate_replicas(id)?;
            return self.inner.core.delete(id);
        }
        // An object this node lent out is still this node's to delete:
        // chase it to the holder and retire the delegation.
        if let Some(holder) = self.inner.ledger.lent_holder(id) {
            return self.delete_at_holder(id, holder);
        }
        // Forward to the owning peer, probing the ring's computed owner
        // first (most likely holder). An unreachable peer might be the
        // owner, so `NotFound` is only definite once every peer answered.
        let mut unreachable: Option<String> = None;
        for peer in self.peers_owner_first(id) {
            let req = IdReq { id };
            match self.peer_call(&peer, method::DELETE, req.encode()) {
                Ok(_) => {
                    if let Some(cache) = &self.inner.idcache {
                        cache.invalidate(id);
                    }
                    return Ok(());
                }
                Err(PeerFail::Rpc(RpcError::Status(s))) if s.code == StatusCode::NotFound => {
                    continue
                }
                Err(PeerFail::Rpc(RpcError::Status(s)))
                    if s.code == StatusCode::FailedPrecondition =>
                {
                    return Err(PlasmaError::ObjectInUse(id))
                }
                Err(PeerFail::Rpc(e)) => return Err(Self::rpc_err(e)),
                Err(PeerFail::Skipped) => {
                    unreachable.get_or_insert_with(|| format!("peer {} is down", peer.name));
                }
                Err(PeerFail::Unreachable(m)) => {
                    unreachable.get_or_insert(m);
                }
            }
        }
        match unreachable {
            Some(m) => Err(PlasmaError::PeerUnavailable(m)),
            None => Err(PlasmaError::ObjectNotFound(id)),
        }
    }

    fn delete_deferred(&self, id: ObjectId) -> Result<bool, PlasmaError> {
        let delegated = self.inner.ledger.borrowed_owner(id).is_some()
            || self.inner.replicas.replica_owner(id).is_some();
        if !delegated && self.inner.core.exists_any_state(id) {
            // Same replica-invalidation ordering as `delete`: a deferred
            // delete hides the object at once, so replicas must go first.
            self.invalidate_replicas(id)?;
            return self.inner.core.delete_deferred(id);
        }
        if let Some(holder) = self.inner.ledger.lent_holder(id) {
            return self.delete_at_holder(id, holder).map(|()| true);
        }
        let mut unreachable: Option<String> = None;
        for peer in self.peers_owner_first(id) {
            let req = IdReq { id };
            match self.peer_call(&peer, method::DELETE_DEFERRED, req.encode()) {
                Ok(body) => {
                    if let Some(cache) = &self.inner.idcache {
                        cache.invalidate(id);
                    }
                    let resp = BoolResp::decode(body)
                        .map_err(|e| PlasmaError::Protocol(format!("deferred delete: {e}")))?;
                    return Ok(resp.value);
                }
                Err(PeerFail::Rpc(RpcError::Status(s))) if s.code == StatusCode::NotFound => {
                    continue
                }
                Err(PeerFail::Rpc(e)) => return Err(Self::rpc_err(e)),
                Err(PeerFail::Skipped) => {
                    unreachable.get_or_insert_with(|| format!("peer {} is down", peer.name));
                }
                Err(PeerFail::Unreachable(m)) => {
                    unreachable.get_or_insert(m);
                }
            }
        }
        match unreachable {
            Some(m) => Err(PlasmaError::PeerUnavailable(m)),
            None => Err(PlasmaError::ObjectNotFound(id)),
        }
    }

    fn abort(&self, id: ObjectId) -> Result<(), PlasmaError> {
        let staged_owner = self.inner.staged_out.lock().remove(&id);
        match staged_owner {
            Some(owner) => {
                // Best-effort: if the owner is unreachable the staged
                // orphan is aborted by reconciliation at quiesce, so a
                // failed ABORT_AT is not an error the caller can act on.
                if let Some(peer) = self.peers_snapshot().into_iter().find(|p| p.node == owner) {
                    let req = ForwardReq {
                        requester: self.inner.node,
                        epoch: self.ring_epoch(),
                        id,
                    };
                    let _ = self.peer_call(&peer, method::ABORT_AT, req.encode());
                }
                Ok(())
            }
            None => self.inner.core.abort(id),
        }
    }

    fn contains(&self, id: ObjectId) -> Result<bool, PlasmaError> {
        // A borrowed replica doesn't answer locally — the owner's ledger
        // is the authority on whether the object still exists (and the
        // remote probe below asks it).
        let local = self.inner.core.contains(id) && self.inner.ledger.borrowed_owner(id).is_none();
        if local || self.inner.ledger.lent_holder(id).is_some() {
            return Ok(true);
        }
        let peers = self.peers_snapshot();
        // Ring phase: one point-to-point probe at the computed owner. A
        // positive answer settles it; a negative one falls back to the
        // broadcast below, because migration can move objects off-ring.
        let ring_owner = self
            .ring_owner(id)
            .filter(|&owner| owner != self.inner.node);
        if let Some(owner) = ring_owner {
            if let Some(peer) = peers.iter().find(|p| p.node == owner) {
                let req = IdReq { id }.encode();
                if let Ok(body) = self.peer_call(peer, method::CONTAINS, req) {
                    let resp = BoolResp::decode(body)
                        .map_err(|e| PlasmaError::Protocol(format!("contains response: {e}")))?;
                    if resp.value {
                        self.note_ring_hits(1);
                        return Ok(true);
                    }
                }
            }
        }
        if ring_owner.is_some() {
            self.note_ring_fallbacks(1);
        }
        // Ask every peer in parallel; unreachable peers count as "not
        // here" (partial answer, not an error).
        let req_body = IdReq { id }.encode();
        let answers = self.fanout(&peers, |peer| {
            self.peer_call(peer, method::CONTAINS, req_body.clone())
        });
        for answer in answers {
            let Ok(body) = answer else { continue };
            let resp = BoolResp::decode(body)
                .map_err(|e| PlasmaError::Protocol(format!("contains response: {e}")))?;
            if resp.value {
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn list(&self) -> Result<Vec<ObjectInfo>, PlasmaError> {
        Ok(self.inner.core.list())
    }

    fn stats(&self) -> Result<StoreStats, PlasmaError> {
        Ok(self.inner.core.stats())
    }

    fn evict(&self, bytes: u64) -> Result<u64, PlasmaError> {
        Ok(self.inner.core.evict(bytes))
    }

    fn subscribe(&self) -> Receiver<ObjectLocation> {
        self.inner.core.subscribe()
    }
}

/// RPC service answering peer interconnect calls against a [`DisaggStore`].
struct Interconnect {
    store: DisaggStore,
}

impl Service for Interconnect {
    fn call(&self, method_id: u32, request: Bytes) -> Result<Bytes, Status> {
        let inner = &self.store.inner;
        match method_id {
            method::LOOKUP => {
                let req = LookupReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                let mut found = Vec::new();
                for id in req.ids {
                    let loc = if req.pin {
                        let loc = inner.core.get_local(id);
                        if let Some(l) = loc {
                            inner.remote_refs.pin(req.requester, l.id);
                        }
                        loc
                    } else {
                        inner.core.peek(id)
                    };
                    if let Some(l) = loc {
                        found.push(l);
                    }
                }
                Ok(LookupResp { found }.encode())
            }
            method::RESERVE => {
                let req = ReserveReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                let outcome = inner.reservations.on_remote_reserve(
                    inner.node,
                    req.requester,
                    req.id,
                    // A lent or replicated object exists even without
                    // local bytes.
                    inner.core.exists_any_state(req.id)
                        || inner.ledger.lent_holder(req.id).is_some()
                        || inner.replicas.holder_count(req.id) > 0,
                );
                Ok(ReserveResp {
                    granted: outcome == ReserveOutcome::Granted,
                }
                .encode())
            }
            method::RELEASE => {
                let req = ReleaseReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                if inner.remote_refs.unpin(req.requester, req.id) {
                    inner
                        .core
                        .release(req.id)
                        .map_err(|e| Status::internal(e.to_string()))?;
                    Ok(BoolResp { value: true }.encode())
                } else {
                    Ok(BoolResp { value: false }.encode())
                }
            }
            method::CONTAINS => {
                let req =
                    IdReq::decode(request).map_err(|e| Status::invalid_argument(e.to_string()))?;
                // A lent object still *exists* from the cluster's point of
                // view — the ring owner answers for it even while a holder
                // keeps the bytes. Conversely, a *borrowed* replica is the
                // owner's to account for, not this node's: hiding it keeps
                // an ambiguous-spill duplicate from contradicting the
                // owner after a delete.
                let present = (inner.core.contains(req.id)
                    && inner.ledger.borrowed_owner(req.id).is_none())
                    || inner.ledger.lent_holder(req.id).is_some();
                Ok(BoolResp { value: present }.encode())
            }
            method::DELETE => {
                let req =
                    IdReq::decode(request).map_err(|e| Status::invalid_argument(e.to_string()))?;
                // A delegated copy — a held read replica or a borrowed
                // (spilled) object — cannot satisfy a fan-out delete: the
                // ring owner is the delete authority, and only its
                // invalidate-before-delete / lend-chase ordering clears
                // every copy. Consuming the local copy here would ack a
                // delete the owner never saw, leaving the owner's primary
                // (or an ambiguous-spill duplicate) serving reads.
                // NotFound sends the caller's fan-out on to the owner;
                // the owner retires delegated copies via DELETE_HELD.
                if inner.replicas.replica_owner(req.id).is_some()
                    || inner.ledger.borrowed_owner(req.id).is_some()
                {
                    return Err(Status::not_found(
                        "delegated copy: owner arbitrates deletes",
                    ));
                }
                // Replicas go before the local copy (same ordering as the
                // owner-local delete path): an unconfirmed invalidation
                // fails the delete with the object intact.
                if let Err(e) = self.store.invalidate_replicas(req.id) {
                    return Err(Status::new(StatusCode::Unavailable, e.to_string()));
                }
                match inner.core.delete(req.id) {
                    Ok(()) => {
                        // If this node held the object on another's behalf,
                        // the delegation died with the replica.
                        if inner.ledger.remove_borrowed(req.id) {
                            self.store.sync_ledger_gauges();
                        }
                        Ok(Bytes::new())
                    }
                    Err(PlasmaError::ObjectNotFound(_)) => {
                        // No local copy — but if this node lent the object
                        // out, the delete must chase it to the holder.
                        if let Some(holder) = inner.ledger.lent_holder(req.id) {
                            return match self.store.delete_at_holder(req.id, holder) {
                                Ok(()) => Ok(Bytes::new()),
                                Err(PlasmaError::ObjectInUse(_)) => Err(Status::new(
                                    StatusCode::FailedPrecondition,
                                    "object in use",
                                )),
                                Err(e) => Err(Status::internal(e.to_string())),
                            };
                        }
                        Err(Status::not_found("object not found"))
                    }
                    Err(PlasmaError::ObjectInUse(_)) => {
                        Err(Status::new(StatusCode::FailedPrecondition, "object in use"))
                    }
                    Err(e) => Err(Status::internal(e.to_string())),
                }
            }
            method::DELETE_DEFERRED => {
                let req =
                    IdReq::decode(request).map_err(|e| Status::invalid_argument(e.to_string()))?;
                // Same gate as DELETE: a delegated copy is the owner's
                // to retire, never this node's to consume.
                if inner.replicas.replica_owner(req.id).is_some()
                    || inner.ledger.borrowed_owner(req.id).is_some()
                {
                    return Err(Status::not_found(
                        "delegated copy: owner arbitrates deletes",
                    ));
                }
                if let Err(e) = self.store.invalidate_replicas(req.id) {
                    return Err(Status::new(StatusCode::Unavailable, e.to_string()));
                }
                match inner.core.delete_deferred(req.id) {
                    Ok(now) => {
                        // Even a deferred delete hides the object at once,
                        // so the delegation is over either way.
                        if inner.ledger.remove_borrowed(req.id) {
                            self.store.sync_ledger_gauges();
                        }
                        Ok(BoolResp { value: now }.encode())
                    }
                    Err(PlasmaError::ObjectNotFound(_)) => {
                        if let Some(holder) = inner.ledger.lent_holder(req.id) {
                            return match self.store.delete_at_holder(req.id, holder) {
                                Ok(()) => Ok(BoolResp { value: true }.encode()),
                                Err(e) => Err(Status::internal(e.to_string())),
                            };
                        }
                        Err(Status::not_found("object not found"))
                    }
                    Err(e) => Err(Status::internal(e.to_string())),
                }
            }
            method::DELETE_HELD => {
                let req =
                    IdReq::decode(request).map_err(|e| Status::invalid_argument(e.to_string()))?;
                // The owner's delete chase: unlike the generic DELETE,
                // this verb *is* allowed to consume a delegated copy —
                // the owner already decided the object dies, and this
                // node's copy (lent or replicated) dies with it.
                match inner.core.delete(req.id) {
                    Ok(()) => {
                        if inner.ledger.remove_borrowed(req.id) {
                            self.store.sync_ledger_gauges();
                        }
                        if let Some(owner) = inner.replicas.replica_owner(req.id) {
                            inner.replicas.remove_replica(req.id, owner);
                            self.store.sync_replica_gauges();
                        }
                        Ok(Bytes::new())
                    }
                    Err(PlasmaError::ObjectNotFound(_)) => {
                        Err(Status::not_found("object not found"))
                    }
                    Err(PlasmaError::ObjectInUse(_)) => {
                        Err(Status::new(StatusCode::FailedPrecondition, "object in use"))
                    }
                    Err(e) => Err(Status::internal(e.to_string())),
                }
            }
            method::LIST => {
                let entries: Vec<ListEntry> = inner
                    .core
                    .list()
                    .into_iter()
                    .filter(|i| i.state == plasma::ObjectState::Sealed)
                    .map(|i| ListEntry {
                        id: i.id,
                        data_size: i.data_size,
                        metadata_size: i.metadata_size,
                        ref_count: i.ref_count,
                    })
                    .collect();
                Ok(ListResp {
                    node: inner.node,
                    entries,
                }
                .encode())
            }
            method::GET_MANY => {
                let req = GetManyReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                self.store.maybe_adopt_epoch(req.requester, req.epoch);
                // Partial success by design: each id answers for itself.
                // Pins are taken (and attributed to the requester) only
                // for ids found sealed here, so a NotFound entry can
                // never leak a reference in the owner's ledger.
                let entries = req
                    .ids
                    .into_iter()
                    .map(|id| {
                        // Borrowed replicas answer only redirect-following
                        // requests: a broadcast observing one could serve
                        // reads after the owner's copy was deleted (the
                        // duplication left by an ambiguous spill).
                        let local = if req.redirected || inner.ledger.borrowed_owner(id).is_none() {
                            inner.core.get_local(id)
                        } else {
                            None
                        };
                        match local {
                            Some(loc) => {
                                inner.remote_refs.pin(req.requester, loc.id);
                                inner.heat.record(id, req.requester);
                                GetManyEntry {
                                    id,
                                    status: GetManyStatus::Pinned,
                                    location: Some(loc),
                                    moved_to: None,
                                }
                            }
                            // Not held here, but lent out: answer with a
                            // one-hop redirect instead of NotFound, so the
                            // ring owner keeps resolving ids it spilled away.
                            None => match inner.ledger.lent_holder(id) {
                                Some(holder) => {
                                    inner.metrics.redirects_served.inc();
                                    GetManyEntry {
                                        id,
                                        status: GetManyStatus::Moved,
                                        location: None,
                                        moved_to: Some(holder),
                                    }
                                }
                                None => GetManyEntry {
                                    id,
                                    status: GetManyStatus::NotFound,
                                    location: None,
                                    moved_to: None,
                                },
                            },
                        }
                    })
                    .collect();
                Ok(GetManyResp {
                    entries,
                    epoch: self.store.ring_epoch(),
                }
                .encode())
            }
            method::RECONCILE => {
                let req = ReconcileReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                let holds: HashMap<ObjectId, u64> = req.holds.into_iter().collect();
                let excess = inner.remote_refs.reconcile(req.requester, &holds);
                let mut trimmed = 0u64;
                for (id, count) in excess {
                    trimmed += count;
                    let mut count = count;
                    // A forwarded create the requester no longer claims is
                    // an orphan: the requester crashed or gave up between
                    // CREATE_AT and SEAL_AT. Abort it — the staged buffer
                    // can never be sealed by anyone else.
                    let staged_by_requester = {
                        let mut staged = inner.staged_remote.lock();
                        match staged.get(&id) {
                            Some(&(requester, _)) if requester == req.requester => {
                                staged.remove(&id);
                                true
                            }
                            _ => false,
                        }
                    };
                    if staged_by_requester {
                        let _ = inner.core.abort(id);
                        count -= 1;
                    }
                    for _ in 0..count {
                        // The object may have been deleted or evicted since
                        // the orphan pin was taken; nothing left to release.
                        let _ = inner.core.release(id);
                    }
                }
                Ok(ReconcileResp { trimmed }.encode())
            }
            method::CREATE_AT => {
                let req = CreateAtReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                self.store.maybe_adopt_epoch(req.requester, req.epoch);
                let epoch = self.store.ring_epoch();
                // Dispute ownership only from an installed ring: without
                // one this node cannot know better than the requester.
                if epoch > 0 {
                    match self.store.ring_owner(req.id) {
                        Some(owner) if owner != inner.node => {
                            return Ok(CreateAtResp {
                                status: CreateAtStatus::WrongOwner,
                                location: None,
                                epoch,
                            }
                            .encode());
                        }
                        _ => {}
                    }
                }
                // Idempotent retry: the same requester re-asking for its
                // own staged create gets the same location back (its
                // first response may have been lost in flight).
                {
                    let staged = inner.staged_remote.lock();
                    if let Some(&(requester, loc)) = staged.get(&req.id) {
                        let resp = if requester == req.requester {
                            CreateAtResp {
                                status: CreateAtStatus::Ok,
                                location: Some(loc),
                                epoch,
                            }
                        } else {
                            CreateAtResp {
                                status: CreateAtStatus::Exists,
                                location: None,
                                epoch,
                            }
                        };
                        return Ok(resp.encode());
                    }
                }
                // A lent object still exists (its bytes live at the
                // holder): refuse re-creation or the id would fork. The
                // same goes for an id with outstanding replicas.
                if inner.ledger.lent_holder(req.id).is_some()
                    || inner.replicas.holder_count(req.id) > 0
                {
                    return Ok(CreateAtResp {
                        status: CreateAtStatus::Exists,
                        location: None,
                        epoch,
                    }
                    .encode());
                }
                // Admission gate sits *after* the idempotent-retry check:
                // a requester re-asking about its own staged create must
                // get its location back even under overload.
                if let Err(PlasmaError::Overloaded { retry_after_ms }) =
                    self.store.check_admission()
                {
                    return Err(Status::new(
                        StatusCode::ResourceExhausted,
                        format!("overloaded: retry_after_ms={retry_after_ms}"),
                    ));
                }
                // The core's id map is the uniqueness arbiter: no
                // pre-check, `create` itself refuses duplicates.
                match inner.core.create(req.id, req.data_size, req.metadata_size) {
                    Ok(loc) => {
                        inner.remote_refs.pin(req.requester, req.id);
                        inner
                            .staged_remote
                            .lock()
                            .insert(req.id, (req.requester, loc));
                        Ok(CreateAtResp {
                            status: CreateAtStatus::Ok,
                            location: Some(loc),
                            epoch,
                        }
                        .encode())
                    }
                    Err(PlasmaError::ObjectExists(_)) => Ok(CreateAtResp {
                        status: CreateAtStatus::Exists,
                        location: None,
                        epoch,
                    }
                    .encode()),
                    Err(e) => Err(Status::internal(e.to_string())),
                }
            }
            method::SEAL_AT => {
                let req = ForwardReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                self.store.maybe_adopt_epoch(req.requester, req.epoch);
                let epoch = self.store.ring_epoch();
                let staged = {
                    let mut staged = inner.staged_remote.lock();
                    match staged.get(&req.id) {
                        Some(&(requester, _)) if requester == req.requester => {
                            staged.remove(&req.id);
                            true
                        }
                        _ => false,
                    }
                };
                if staged {
                    let loc = inner
                        .core
                        .seal(req.id)
                        .map_err(|e| Status::internal(e.to_string()))?;
                    // Consume the creator's reference here: the
                    // requester's put finishes with a local waiver
                    // instead of a trailing RELEASE that could be lost.
                    if inner.remote_refs.unpin(req.requester, req.id) {
                        let _ = inner.core.release(req.id);
                    }
                    return Ok(CreateAtResp {
                        status: CreateAtStatus::Ok,
                        location: Some(loc),
                        epoch,
                    }
                    .encode());
                }
                // Idempotent retry: a seal whose response was lost left
                // the object sealed with no staging entry — peek answers
                // sealed objects only, so this cannot resurrect aborts.
                match inner.core.peek(req.id) {
                    Some(loc) => Ok(CreateAtResp {
                        status: CreateAtStatus::Ok,
                        location: Some(loc),
                        epoch,
                    }
                    .encode()),
                    None => Err(Status::not_found("no staged create for id")),
                }
            }
            method::ABORT_AT => {
                let req = ForwardReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                self.store.maybe_adopt_epoch(req.requester, req.epoch);
                let staged = {
                    let mut staged = inner.staged_remote.lock();
                    match staged.get(&req.id) {
                        Some(&(requester, _)) if requester == req.requester => {
                            staged.remove(&req.id);
                            true
                        }
                        _ => false,
                    }
                };
                if staged {
                    inner.remote_refs.unpin(req.requester, req.id);
                    inner
                        .core
                        .abort(req.id)
                        .map_err(|e| Status::internal(e.to_string()))?;
                }
                Ok(BoolResp { value: staged }.encode())
            }
            method::SPILL_AT => {
                let req = SpillAtReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                self.store.maybe_adopt_epoch(req.requester, req.epoch);
                let epoch = self.store.ring_epoch();
                let id = req.location.id;
                let refused = |epoch| {
                    Ok(SpillAtResp {
                        status: SpillAtStatus::Refused,
                        epoch,
                    }
                    .encode())
                };
                // Idempotent retry: a spill whose response was lost left
                // the replica sealed here — re-acknowledge adoption so the
                // owner can finish its half of the handoff.
                if inner.core.peek(id).is_some() {
                    inner
                        .ledger
                        .record_borrowed(id, req.requester, req.location.total_size());
                    self.store.sync_ledger_gauges();
                    return Ok(SpillAtResp {
                        status: SpillAtStatus::Adopted,
                        epoch,
                    }
                    .encode());
                }
                // Headroom gate: never let borrowed bytes push this node
                // past its own lending watermark, or spills would cascade.
                let st = inner.core.stats();
                let after = u128::from(st.allocated_bytes) + u128::from(req.location.total_size());
                if st.capacity == 0
                    || after * 1_000_000 / u128::from(st.capacity)
                        > u128::from(inner.elastic.lend_headroom_ppm)
                {
                    return refused(epoch);
                }
                // Copy the (immutable, owner-pinned) bytes over the fabric
                // and seal a replica under the same id. Any failure before
                // seal aborts the staged copy and refuses — the owner's
                // copy is untouched.
                let adopt = || -> Result<(), PlasmaError> {
                    // On the framed plane the payload rides inside the
                    // request (embedding avoids a nested RPC back into the
                    // owner, which is blocked in this very call); on the
                    // mapped plane it is pulled straight from the owner's
                    // sealed segment with no intermediate frame.
                    let bytes = match &req.payload {
                        Some(p) => p.to_vec(),
                        None => {
                            if inner.data_plane.framed() {
                                return Err(PlasmaError::Protocol(
                                    "framed spill without payload".into(),
                                ));
                            }
                            inner.data_plane.pull(
                                &StoreLink(&self.store),
                                req.requester,
                                &req.location,
                            )?
                        }
                    };
                    let loc = inner.core.create(
                        id,
                        req.location.data_size,
                        req.location.metadata_size,
                    )?;
                    let staged = StagedCreateGuard::new(&self.store, id);
                    let local_map = inner.core.mapping_for(&loc)?;
                    local_map.write_at(loc.offset, &bytes)?;
                    inner.core.seal(id)?;
                    staged.disarm();
                    inner.core.release(id)?; // creator's reference
                    Ok(())
                };
                if adopt().is_err() {
                    return refused(epoch);
                }
                inner
                    .ledger
                    .record_borrowed(id, req.requester, req.location.total_size());
                self.store.sync_ledger_gauges();
                Ok(SpillAtResp {
                    status: SpillAtStatus::Adopted,
                    epoch,
                }
                .encode())
            }
            method::DATA_READ => {
                let req = DataReadReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                // Framed-plane bulk read: serve the sealed bytes named by
                // the descriptor out of the local segment. The mapped
                // plane never sends this — peers read the segment
                // directly.
                let mapping = inner
                    .core
                    .mapping_for(&req.location)
                    .map_err(|e| Status::internal(e.to_string()))?;
                let bytes = mapping
                    .view(req.location.offset, req.location.total_size())
                    .and_then(|v| v.read_all())
                    .map_err(|e| Status::internal(e.to_string()))?;
                Ok(DataReadResp {
                    payload: Bytes::from(bytes),
                }
                .encode())
            }
            method::DATA_WRITE => {
                let req = DataWriteReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                // Framed-plane bulk write into a staged remote create.
                // Only the creator that holds the CREATE_AT stage may
                // write — anyone else is refused without touching memory.
                let allowed = inner
                    .staged_remote
                    .lock()
                    .get(&req.location.id)
                    .is_some_and(|&(r, _)| r == req.requester);
                if !allowed {
                    return Ok(BoolResp { value: false }.encode());
                }
                let mapping = inner
                    .core
                    .mapping_for(&req.location)
                    .map_err(|e| Status::internal(e.to_string()))?;
                mapping
                    .write_at(req.location.offset, &req.payload)
                    .map_err(|e| Status::internal(e.to_string()))?;
                Ok(BoolResp { value: true }.encode())
            }
            method::REPLICATE_AT => {
                let req = SpillAtReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                self.store.maybe_adopt_epoch(req.requester, req.epoch);
                let epoch = self.store.ring_epoch();
                let id = req.location.id;
                let refused = |epoch| {
                    Ok(SpillAtResp {
                        status: SpillAtStatus::Refused,
                        epoch,
                    }
                    .encode())
                };
                if !inner.replication.enabled {
                    return refused(epoch);
                }
                // Idempotent retry: a replicate whose response was lost
                // left the replica sealed here — re-acknowledge it. A
                // local copy that is *not* a recorded replica from this
                // owner exists for some other reason (e.g. we are mid
                // re-own); refuse rather than fork the accounting.
                if inner.core.peek(id).is_some() {
                    return if inner.replicas.replica_owner(id) == Some(req.requester) {
                        inner.replicas.record_replica(id, req.requester);
                        self.store.sync_replica_gauges();
                        Ok(SpillAtResp {
                            status: SpillAtStatus::Adopted,
                            epoch,
                        }
                        .encode())
                    } else {
                        refused(epoch)
                    };
                }
                // A lent object's only bytes live at its holder; it must
                // never also gain replicas (single-lease invariant).
                if inner.ledger.borrowed_owner(id).is_some() {
                    return refused(epoch);
                }
                // Same headroom gate as SPILL_AT: replicas are strictly
                // optional, so never let them push us past the lending
                // watermark.
                let st = inner.core.stats();
                let after = u128::from(st.allocated_bytes) + u128::from(req.location.total_size());
                if st.capacity == 0
                    || after * 1_000_000 / u128::from(st.capacity)
                        > u128::from(inner.elastic.lend_headroom_ppm)
                {
                    return refused(epoch);
                }
                let adopt = || -> Result<(), PlasmaError> {
                    let bytes = match &req.payload {
                        Some(p) => p.to_vec(),
                        None => {
                            if inner.data_plane.framed() {
                                return Err(PlasmaError::Protocol(
                                    "framed replicate without payload".into(),
                                ));
                            }
                            inner.data_plane.pull(
                                &StoreLink(&self.store),
                                req.requester,
                                &req.location,
                            )?
                        }
                    };
                    let loc = inner.core.create(
                        id,
                        req.location.data_size,
                        req.location.metadata_size,
                    )?;
                    let staged = StagedCreateGuard::new(&self.store, id);
                    let local_map = inner.core.mapping_for(&loc)?;
                    local_map.write_at(loc.offset, &bytes)?;
                    inner.core.seal(id)?;
                    staged.disarm();
                    inner.core.release(id)?; // creator's reference
                    Ok(())
                };
                if adopt().is_err() {
                    return refused(epoch);
                }
                // Unlike SPILL_AT, the owner keeps its copy — this is a
                // read replica, not a lease handoff.
                inner.replicas.record_replica(id, req.requester);
                self.store.sync_replica_gauges();
                Ok(SpillAtResp {
                    status: SpillAtStatus::Adopted,
                    epoch,
                }
                .encode())
            }
            method::INVALIDATE => {
                let req = InvalidateReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                // Owner is deleting: drop our replica (owner-checked so a
                // racing re-replication under a newer owner epoch is not
                // clobbered) and flush the simulated cache lines covering
                // it before the segment bytes are reused.
                let removed = inner.replicas.remove_replica(req.id, req.owner);
                if removed {
                    if let Some(loc) = inner.core.peek(req.id) {
                        if let (Ok(cache), Ok(mapping)) = (
                            inner.core.fabric().node_cache(inner.node),
                            inner.core.mapping_for(&loc),
                        ) {
                            cache.invalidate_range(
                                mapping.segment(),
                                loc.offset,
                                loc.total_size() as usize,
                            );
                        }
                        // Deferred: a read pinning the replica right now
                        // finishes; the bytes go when the pin drops. The
                        // ledger entry is already gone, so no *new* read
                        // can be attributed to a stale replica.
                        let _ = inner.core.delete_deferred(req.id);
                    }
                    inner.metrics.replicas_invalidated.inc();
                    self.store.sync_replica_gauges();
                }
                Ok(BoolResp { value: removed }.encode())
            }
            method::REPLICA_RECONCILE => {
                let req = BorrowReconcileReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                // Owner-side view of one holder's replica report. An
                // entry is kept only while the owner still has its own
                // sealed copy and the id is not lent — otherwise the
                // replica is stale (or violates the lent⊕replicated
                // exclusion) and the holder is told to drop it. Entries
                // the holder did not report are dead — trim them.
                let mut drop_ids = Vec::new();
                let mut reported = HashSet::with_capacity(req.borrowed.len());
                for id in req.borrowed {
                    reported.insert(id);
                    let keep = match inner.core.peek(id) {
                        Some(_) => inner.ledger.lent_holder(id).is_none(),
                        None => false,
                    };
                    if keep {
                        let bytes = inner
                            .core
                            .peek(id)
                            .map(|l| l.total_size())
                            .unwrap_or_default();
                        // Heals a lost REPLICATE_AT response.
                        inner.replicas.record_held(id, req.requester, bytes);
                    } else {
                        inner.replicas.remove_holder(id, req.requester);
                        drop_ids.push(id);
                    }
                }
                let trimmed = inner.replicas.trim_held(req.requester, &reported);
                self.store.sync_replica_gauges();
                Ok(BorrowReconcileResp {
                    drop: drop_ids,
                    trimmed,
                }
                .encode())
            }
            method::BORROW_RECONCILE => {
                let req = BorrowReconcileReq::decode(request)
                    .map_err(|e| Status::invalid_argument(e.to_string()))?;
                // Owner-side view of one holder's report. For each id the
                // holder claims: if we re-acquired a local copy the
                // delegation is redundant — tell the holder to drop its
                // replica; otherwise the holder's replica is the only copy,
                // so (re)install the lent entry (heals a lost SPILL_AT
                // response). Entries the holder did *not* report are dead —
                // trim them.
                let mut drop_ids = Vec::new();
                let mut reported = HashSet::with_capacity(req.borrowed.len());
                for id in req.borrowed {
                    reported.insert(id);
                    if inner.core.peek(id).is_some() {
                        inner.ledger.remove_lent(id);
                        drop_ids.push(id);
                        continue;
                    }
                    match inner.ledger.lent_holder(id) {
                        // Already leased to a *different* holder: an
                        // ambiguous spill left this reporter a redundant
                        // duplicate. The recorded lease is the truth (it
                        // was confirmed adopted, so that replica exists)
                        // — overwriting it here would orphan the other
                        // holder's entry and fork the lease. Drop the
                        // reporter's replica instead.
                        Some(holder) if holder != req.requester => {
                            drop_ids.push(id);
                        }
                        _ => {
                            let bytes = inner.ledger.lent_bytes(id).unwrap_or_default();
                            inner.ledger.record_lent(id, req.requester, bytes);
                        }
                    }
                }
                let trimmed = inner.ledger.trim_lent(req.requester, &reported);
                self.store.sync_ledger_gauges();
                Ok(BorrowReconcileResp {
                    drop: drop_ids,
                    trimmed,
                }
                .encode())
            }
            method::MEMBERSHIP => {
                let membership = self.store.membership();
                let (epoch, nodes) = match membership {
                    Some(m) => (m.epoch, m.nodes),
                    None => (0, Vec::new()),
                };
                Ok(MembershipResp { epoch, nodes }.encode())
            }
            method::METRICS => Ok(MetricsResp {
                node: inner.node,
                snapshot: Bytes::from(self.store.metrics_snapshot().encode()),
            }
            .encode()),
            other => Err(Status::unimplemented(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plasma::{StoreConfig, StoreCore};
    use rpclite::RpcClient;

    /// Regression for the ambiguous-owner cache race: when two peers both
    /// answer a lookup for the same id, the duplicate pin is released back
    /// to the loser — and the id cache must end up pointing at the
    /// *ledgered winner*, even if a concurrent pass cached the loser
    /// between the winner's insert and the duplicate's absorption. Before
    /// the realign, the released loser entry survived in the cache and
    /// misrouted (or, in Direct mode, corrupted) every repeat get.
    #[test]
    fn duplicate_absorb_realigns_cache_to_ledgered_winner() {
        let fabric = tfsim::Fabric::virtual_thymesisflow();
        let nodes: Vec<NodeId> = (0..3).map(|_| fabric.register_node()).collect();
        let mk_core = |node, name: &str| {
            StoreCore::new(&fabric, node, StoreConfig::new(name, 1 << 20)).unwrap()
        };
        let observer = DisaggStore::new(
            mk_core(nodes[0], "observer"),
            DisaggConfig {
                id_cache: Some((CacheMode::Pinning, 64)),
                ..DisaggConfig::default()
            },
        );
        let winner_core = mk_core(nodes[1], "winner");
        let loser_core = mk_core(nodes[2], "loser");

        // Dual-copy state (what a migration race leaves behind): both
        // peers hold the id sealed, at different fabric locations.
        let id = ObjectId::from_name("dup");
        let mut locs = Vec::new();
        for core in [&winner_core, &loser_core] {
            core.create(id, 64, 0).unwrap();
            core.seal(id).unwrap();
            core.release(id).unwrap();
            locs.push(core.peek(id).unwrap());
        }

        // A stub interconnect that accepts the duplicate's release.
        let hub = ipc::InprocHub::new();
        let svc =
            Arc::new(|_m: u32, _b: Bytes| -> Result<Bytes, rpclite::Status> { Ok(Bytes::new()) });
        let _srv = rpclite::serve(Box::new(hub.bind("stub").unwrap()), svc);
        let peer = |node, name: &str| Peer {
            node,
            name: name.into(),
            client: Arc::new(RpcClient::new(Box::new(hub.connect("stub").unwrap()))),
        };
        let winner = peer(nodes[1], "winner");
        let loser = peer(nodes[2], "loser");

        let mut found = HashMap::new();
        observer.absorb_lookup(&winner, vec![locs[0]], &mut found);

        // The interleaving under test: a concurrent targeted pass caches
        // the loser *after* the winner's answer was absorbed...
        let cache = observer.inner.idcache.as_ref().unwrap();
        cache.insert(CachedEntry {
            location: locs[1],
            peer: nodes[2],
        });
        assert_eq!(cache.lookup(id).unwrap().peer, nodes[2]);

        // ...then the duplicate answer arrives: its pin goes back to the
        // loser and the stale cache entry is realigned to the winner.
        observer.absorb_lookup(&loser, vec![locs[1]], &mut found);
        let entry = cache.lookup(id).expect("entry must survive realign");
        assert_eq!(entry.peer, nodes[1], "cache must point at the winner");
        assert_eq!(entry.location.seg.owner, nodes[1]);
        assert_eq!(found[&id].seg.owner, nodes[1], "winner's answer stands");
    }
}
