//! Figure 3 — cache-coherency in ThymesisFlow transactions, demonstrated.
//!
//! Reproduces both halves of the paper's Fig. 3 on the simulated fabric:
//!
//! * (a) *reading* remote disaggregated memory is cache-coherent — a
//!   remote reader always observes the owner's latest write;
//! * (b) *writing* remote disaggregated memory is coherent with the
//!   writer but not with the owning node — the owner's CPU cache can
//!   serve a stale value until explicitly invalidated (the situation that
//!   motivates routing store-to-store control over RPC instead of shared
//!   memory).
//!
//! Usage: `cargo run -p bench --bin coherency_demo --release`

use tfsim::{Fabric, Path};

fn main() {
    let fabric = Fabric::virtual_thymesisflow();
    let node_a = fabric.register_node(); // owner / donor
    let node_b = fabric.register_node(); // remote peer
    let seg = fabric.donate(node_a, 1 << 16).expect("donate");
    let map_a = fabric.attach(node_a, seg).expect("attach local");
    let map_b = fabric.attach(node_b, seg).expect("attach remote");
    assert_eq!(map_a.path(), Path::Local);
    assert_eq!(map_b.path(), Path::Remote);
    let cache_a = fabric.node_cache(node_a).expect("cache");

    println!("Fig. 3a — remote READ is cache-coherent");
    map_a.write_at(0, b"value-v1").expect("owner write");
    let seen = map_b.read_vec(0, 8).expect("remote read");
    println!("  owner wrote 'value-v1'; remote reads '{}'", show(&seen));
    assert_eq!(&seen, b"value-v1");
    map_a.write_at(0, b"value-v2").expect("owner write");
    let seen = map_b.read_vec(0, 8).expect("remote read");
    println!(
        "  owner updated to 'value-v2'; remote reads '{}' (coherent)",
        show(&seen)
    );
    assert_eq!(&seen, b"value-v2");

    println!();
    println!("Fig. 3b — remote WRITE is NOT coherent with the owning node");
    // Owner reads through its CPU cache, caching the line.
    let mut buf = [0u8; 8];
    map_a.read_cached(0, &mut buf).expect("owner cached read");
    println!("  owner caches current value: '{}'", show(&buf));
    // Remote node writes the same line through the fabric.
    map_b.write_at(0, b"value-v3").expect("remote write");
    println!("  remote writes 'value-v3' through the fabric");
    map_a.read_cached(0, &mut buf).expect("owner cached read");
    println!(
        "  owner's cached read still sees: '{}'  <-- STALE",
        show(&buf)
    );
    assert_eq!(&buf, b"value-v2");
    map_a.read_at(0, &mut buf).expect("owner uncached read");
    println!(
        "  (memory itself holds '{}' — the write did land)",
        show(&buf)
    );
    assert_eq!(&buf, b"value-v3");

    println!();
    println!("Mitigation — explicit cacheline invalidation (custom kernel module)");
    cache_a.invalidate_range(map_a.segment(), 0, 8);
    map_a.read_cached(0, &mut buf).expect("owner cached read");
    println!("  after invalidate, owner reads: '{}'", show(&buf));
    assert_eq!(&buf, b"value-v3");

    let (hits, misses, invalidations) = cache_a.counters();
    println!();
    println!(
        "owner cache counters: {hits} hits, {misses} misses, {invalidations} lines invalidated"
    );
    println!("conclusion: control-plane state must not be shared via remote writes;");
    println!("the framework uses RPC for store-to-store control and the fabric for data.");
}

fn show(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}
