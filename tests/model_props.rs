//! Property-based end-to-end test: a random sequence of store operations
//! driven against a 3-node cluster must agree with a simple in-memory
//! model (a map of sealed objects), and never corrupt data.

use disagg::{Cluster, ClusterConfig};
use plasma::{ObjectId, PlasmaError};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

/// Operations the fuzzer may issue. Object "names" are small integers so
/// operations collide often; `node` picks which client acts.
#[derive(Debug, Clone)]
enum Op {
    Put { node: usize, name: u8, len: u16 },
    Get { node: usize, name: u8 },
    BatchGet { node: usize, names: Vec<u8> },
    Migrate { node: usize, name: u8 },
    Delete { node: usize, name: u8 },
    Contains { node: usize, name: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..3usize, any::<u8>(), 1..2048u16).prop_map(|(node, name, len)| Op::Put {
            node,
            name: name % 16,
            len
        }),
        (0..3usize, any::<u8>()).prop_map(|(node, name)| Op::Get {
            node,
            name: name % 16
        }),
        // Batches may carry the same name twice: every filled slot takes
        // (and must release) its own reference, duplicates included.
        (0..3usize, proptest::collection::vec(any::<u8>(), 2..5)).prop_map(|(node, names)| {
            Op::BatchGet {
                node,
                names: names.into_iter().map(|n| n % 16).collect(),
            }
        }),
        (0..3usize, any::<u8>()).prop_map(|(node, name)| Op::Migrate {
            node,
            name: name % 16
        }),
        (0..3usize, any::<u8>()).prop_map(|(node, name)| Op::Delete {
            node,
            name: name % 16
        }),
        (0..3usize, any::<u8>()).prop_map(|(node, name)| Op::Contains {
            node,
            name: name % 16
        }),
    ]
}

fn oid(name: u8) -> ObjectId {
    ObjectId::from_name(&format!("prop/{name}"))
}

fn fill(name: u8, len: u16) -> Vec<u8> {
    (0..len).map(|i| (i as u8) ^ name).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cluster_agrees_with_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let cluster = Cluster::launch(ClusterConfig::functional(3, 16 << 20)).unwrap();
        let clients: Vec<_> = (0..3).map(|i| cluster.client(i).unwrap()).collect();
        // Model: name -> (len, owner-node) for every sealed live object.
        let mut model: HashMap<u8, u16> = HashMap::new();

        for op in ops {
            match op {
                Op::Put { node, name, len } => {
                    let result = clients[node].put(oid(name), &fill(name, len), &[]);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(name) {
                        result.unwrap();
                        e.insert(len);
                    } else {
                        prop_assert_eq!(
                            result.unwrap_err(),
                            PlasmaError::ObjectExists(oid(name))
                        );
                    }
                }
                Op::Get { node, name } => {
                    let got = clients[node]
                        .get(&[oid(name)], Duration::from_millis(30))
                        .unwrap();
                    match model.get(&name) {
                        Some(&len) => {
                            let buf = got[0].as_ref().expect("model says object exists");
                            prop_assert_eq!(buf.len(), u64::from(len));
                            prop_assert_eq!(buf.read_all().unwrap(), fill(name, len));
                            clients[node].release(oid(name)).unwrap();
                        }
                        None => prop_assert!(got[0].is_none(), "model says object absent"),
                    }
                }
                Op::BatchGet { node, names } => {
                    let ids: Vec<ObjectId> = names.iter().map(|&n| oid(n)).collect();
                    let got = clients[node].get(&ids, Duration::from_millis(30)).unwrap();
                    prop_assert_eq!(got.len(), ids.len());
                    for (&name, slot) in names.iter().zip(got) {
                        match model.get(&name) {
                            Some(&len) => {
                                let buf = slot.as_ref().expect("model says object exists");
                                prop_assert_eq!(buf.len(), u64::from(len));
                                prop_assert_eq!(buf.read_all().unwrap(), fill(name, len));
                                clients[node].release(oid(name)).unwrap();
                            }
                            None => prop_assert!(slot.is_none(), "model says object absent"),
                        }
                    }
                }
                Op::Migrate { node, name } => {
                    // Pure locality optimization: moves the object's bytes
                    // to `node` without changing what any client observes.
                    let result = cluster
                        .store(node)
                        .migrate_to_local(oid(name), Duration::from_millis(200));
                    if model.contains_key(&name) {
                        result.unwrap();
                    } else {
                        // Absence surfaces as NotFound when provable
                        // immediately, or Timeout after the lookup window.
                        let err = result.unwrap_err();
                        prop_assert!(
                            matches!(
                                err,
                                PlasmaError::ObjectNotFound(_) | PlasmaError::Timeout
                            ),
                            "migrating an absent object: {err}"
                        );
                    }
                }
                Op::Delete { node, name } => {
                    let result = clients[node].delete(oid(name));
                    if model.remove(&name).is_some() {
                        result.unwrap();
                    } else {
                        prop_assert_eq!(
                            result.unwrap_err(),
                            PlasmaError::ObjectNotFound(oid(name))
                        );
                    }
                }
                Op::Contains { node, name } => {
                    let present = clients[node].contains(oid(name)).unwrap();
                    prop_assert_eq!(present, model.contains_key(&name));
                }
            }
        }

        // End state: every modeled object still reads back intact from
        // every node.
        for (&name, &len) in &model {
            for (n, client) in clients.iter().enumerate() {
                let buf = client
                    .get_one(oid(name), Duration::from_secs(5))
                    .unwrap_or_else(|e| panic!("node {n} lost object {name}: {e}"));
                prop_assert_eq!(buf.read_all().unwrap(), fill(name, len));
                client.release(oid(name)).unwrap();
            }
        }
    }
}
