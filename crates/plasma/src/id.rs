//! Plasma object identifiers.
//!
//! 20-byte identifiers, wire- and size-compatible with Apache Arrow
//! Plasma's `ObjectID`. The distributed layer relies on these being unique
//! across *all* connected stores (the paper's "identifier uniqueness"
//! constraint), so besides random generation there is a deterministic
//! digest-based constructor for content-addressed workflows and tests.

use std::fmt;

/// Length of an object id in bytes (matches Arrow Plasma).
pub const OBJECT_ID_LEN: usize = 20;

/// A 20-byte Plasma object identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub [u8; OBJECT_ID_LEN]);

impl ObjectId {
    /// Construct from raw bytes.
    pub const fn from_bytes(bytes: [u8; OBJECT_ID_LEN]) -> Self {
        ObjectId(bytes)
    }

    /// A uniformly random id.
    pub fn random() -> Self {
        let mut bytes = [0u8; OBJECT_ID_LEN];
        rand::Rng::fill(&mut rand::thread_rng(), &mut bytes[..]);
        ObjectId(bytes)
    }

    /// Deterministic id derived from a name — an FNV-1a-based expansion,
    /// stable across runs and platforms. Handy for examples and tests; for
    /// adversarial settings prefer [`ObjectId::random`].
    pub fn from_name(name: &str) -> Self {
        let mut bytes = [0u8; OBJECT_ID_LEN];
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        for (i, chunk) in bytes.chunks_mut(8).enumerate() {
            // Re-mix per chunk so the 20 bytes are not just a repeated u64.
            let mut x = h.wrapping_add((i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
            x ^= x >> 31;
            let le = x.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&le[..n]);
        }
        ObjectId(bytes)
    }

    /// Raw bytes.
    pub const fn as_bytes(&self) -> &[u8; OBJECT_ID_LEN] {
        &self.0
    }

    /// Lowercase hex representation.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(OBJECT_ID_LEN * 2);
        for b in self.0 {
            use fmt::Write;
            write!(s, "{b:02x}").expect("write to String");
        }
        s
    }

    /// Parse from 40 hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != OBJECT_ID_LEN * 2 {
            return None;
        }
        let mut bytes = [0u8; OBJECT_ID_LEN];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            bytes[i] = (hi * 16 + lo) as u8;
        }
        Some(ObjectId(bytes))
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.to_hex();
        write!(f, "ObjectId({}…{})", &hex[..8], &hex[32..])
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn random_ids_are_distinct() {
        let ids: HashSet<ObjectId> = (0..1000).map(|_| ObjectId::random()).collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn from_name_is_deterministic_and_distinct() {
        assert_eq!(ObjectId::from_name("a"), ObjectId::from_name("a"));
        assert_ne!(ObjectId::from_name("a"), ObjectId::from_name("b"));
        let ids: HashSet<ObjectId> = (0..1000)
            .map(|i| ObjectId::from_name(&format!("obj-{i}")))
            .collect();
        assert_eq!(ids.len(), 1000);
    }

    #[test]
    fn hex_roundtrip() {
        let id = ObjectId::random();
        let hex = id.to_hex();
        assert_eq!(hex.len(), 40);
        assert_eq!(ObjectId::from_hex(&hex), Some(id));
    }

    #[test]
    fn bad_hex_rejected() {
        assert_eq!(ObjectId::from_hex("zz"), None);
        assert_eq!(ObjectId::from_hex(&"0".repeat(39)), None);
        assert_eq!(ObjectId::from_hex(&"g".repeat(40)), None);
    }

    #[test]
    fn display_is_full_hex() {
        let id = ObjectId::from_bytes([0xAB; 20]);
        assert_eq!(id.to_string(), "ab".repeat(20));
    }
}
