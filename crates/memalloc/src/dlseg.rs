//! Segregated-bin allocator in the style of dlmalloc — the baseline the
//! paper's replacement allocator is measured against.
//!
//! Free regions are grouped into power-of-two size-class bins; each bin
//! holds a `(size, offset)` ordered set. Allocation looks in the request's
//! own class first and falls through to larger classes, giving near-O(1)
//! behaviour with low scan cost even under heavy fragmentation. Coalescing
//! uses the shared [`FreeMap`] and keeps the bins in sync.

use crate::freemap::{fits, split, FreeMap};
use crate::stats::StatsCore;
use crate::{check_request, AllocError, AllocStats, RegionAllocator};
use std::collections::{BTreeSet, HashMap};

const NBINS: usize = 48;

/// Size class of a region: floor(log2(size)), clamped to the bin range.
fn class(size: u64) -> usize {
    debug_assert!(size > 0);
    (63 - size.leading_zeros() as usize).min(NBINS - 1)
}

/// See the module docs.
#[derive(Debug, Clone)]
pub struct DlSeg {
    capacity: u64,
    free: FreeMap,
    bins: Vec<BTreeSet<(u64, u64)>>,
    live: HashMap<u64, u64>,
    stats: StatsCore,
}

impl DlSeg {
    pub fn new(capacity: u64) -> Self {
        let free = FreeMap::new_full(capacity);
        let mut bins = vec![BTreeSet::new(); NBINS];
        for (o, s) in free.iter() {
            bins[class(s)].insert((s, o));
        }
        DlSeg {
            capacity,
            free,
            bins,
            live: HashMap::new(),
            stats: StatsCore::default(),
        }
    }

    fn add_region(&mut self, offset: u64, size: u64) {
        let merge = self.free.add(offset, size);
        for (o, s) in merge.absorbed {
            let removed = self.bins[class(s)].remove(&(s, o));
            debug_assert!(removed, "bin index out of sync");
        }
        let (mo, ms) = merge.merged;
        self.bins[class(ms)].insert((ms, mo));
    }

    fn remove_region(&mut self, offset: u64, size: u64) {
        self.free.remove(offset);
        let removed = self.bins[class(size)].remove(&(size, offset));
        debug_assert!(removed, "bin index out of sync");
    }

    /// Search the request's class and above for a fitting region.
    fn find(&self, size: u64, align: u64) -> Option<(u64, u64)> {
        for c in class(size)..NBINS {
            // Within a bin, regions are ordered by size then offset; start
            // at the first large enough.
            if let Some(&(s, o)) = self.bins[c]
                .range((size, 0)..)
                .find(|&&(s, o)| fits(o, s, size, align))
            {
                return Some((o, s));
            }
        }
        None
    }
}

impl RegionAllocator for DlSeg {
    fn alloc_aligned(&mut self, size: u64, align: u64) -> Result<u64, AllocError> {
        check_request(size, align)?;
        let Some(region) = self.find(size, align) else {
            self.stats.on_fail();
            return Err(AllocError::OutOfMemory {
                requested: size,
                free: self.free.free_bytes(),
            });
        };
        self.remove_region(region.0, region.1);
        let (off, front, back) = split(region, size, align);
        if let Some((o, s)) = front {
            self.add_region(o, s);
        }
        if let Some((o, s)) = back {
            self.add_region(o, s);
        }
        self.live.insert(off, size);
        self.stats.on_alloc(size);
        Ok(off)
    }

    fn free(&mut self, offset: u64) -> Result<(), AllocError> {
        let size = self
            .live
            .remove(&offset)
            .ok_or(AllocError::UnknownAllocation(offset))?;
        self.add_region(offset, size);
        self.stats.on_free(size);
        Ok(())
    }

    fn allocation_size(&self, offset: u64) -> Option<u64> {
        self.live.get(&offset).copied()
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn stats(&self) -> AllocStats {
        self.stats.render(
            self.capacity,
            self.free.region_count() as u64,
            self.free.largest(),
        )
    }

    fn name(&self) -> &'static str {
        "dlseg"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_boundaries() {
        assert_eq!(class(1), 0);
        assert_eq!(class(2), 1);
        assert_eq!(class(3), 1);
        assert_eq!(class(4), 2);
        assert_eq!(class(1023), 9);
        assert_eq!(class(1024), 10);
        assert_eq!(class(u64::MAX), NBINS - 1);
    }

    #[test]
    fn falls_through_to_larger_bins() {
        let mut a = DlSeg::new(1 << 20);
        // Only one big region exists; a tiny request must find it in a
        // high bin.
        let x = a.alloc_aligned(8, 1).unwrap();
        assert_eq!(x, 0);
    }

    #[test]
    fn reuses_holes_of_matching_class() {
        let mut a = DlSeg::new(1 << 20);
        let x = a.alloc_aligned(500, 1).unwrap();
        let _guard = a.alloc_aligned(64, 1).unwrap();
        a.free(x).unwrap();
        // A 400-byte request lands in the freed 500-byte hole (class 8)
        // rather than carving the large tail region.
        let y = a.alloc_aligned(400, 1).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn bins_survive_merge_churn() {
        let mut a = DlSeg::new(1 << 18);
        let offs: Vec<u64> = (0..64).map(|_| a.alloc_aligned(2048, 1).unwrap()).collect();
        for &o in offs.iter().rev() {
            a.free(o).unwrap();
        }
        let s = a.stats();
        assert_eq!(s.free_regions, 1);
        assert_eq!(s.largest_free, 1 << 18);
        // The whole region is allocatable again.
        let all = a.alloc_aligned(1 << 18, 1).unwrap();
        a.free(all).unwrap();
    }
}
