//! The seeded workload generator: multi-tenant, zipf-popular,
//! lognormal-paced, spatially skewed — and completely replayable.
//!
//! A [`WorkloadSpec`] describes tenants sharing a fabric. Each tenant
//! has a client population (a node range), a per-node object pool, a
//! zipf popularity exponent, a target load in ops/sec whose lognormal
//! inter-arrival distribution is derived analytically (so the empirical
//! rate converges to the target), an op mix (get vs fresh-put churn),
//! and a spatial pattern choosing *which node's pool* each op targets:
//! rack-local, uniform, or hot-pod.
//!
//! [`WorkloadSpec::generate`] expands the spec against a
//! [`ClusterSpec`] into a [`Schedule`] — a time-ordered op list whose
//! every field is a pure function of `(seed, tenant, sequence)`:
//! arrival gaps ride [`netsim::Latency::sample_at`], per-op choices
//! seed a fresh small RNG from their own coordinates. Equal specs ⇒
//! byte-identical schedules.

use crate::spec::{mix, ClusterSpec};
use netsim::Latency;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BinaryHeap;
use std::time::Duration;

/// One payload size class with a selection weight (weights are relative;
/// they need not sum to anything in particular).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeClass {
    /// Object payload size in bytes.
    pub bytes: u64,
    /// Relative selection weight.
    pub weight: u32,
}

/// The Table I size classes with a small-object-heavy weighting — the
/// shape big-data object traffic actually has (many small intermediates,
/// few large partitions). The two largest paper classes (10 MB, 100 MB)
/// keep zero weight here so a million-op schedule fits in simulated
/// memory; callers wanting them can weight them in.
pub fn table1_classes() -> Vec<SizeClass> {
    vec![
        SizeClass {
            bytes: 1_000,
            weight: 55,
        },
        SizeClass {
            bytes: 10_000,
            weight: 30,
        },
        SizeClass {
            bytes: 100_000,
            weight: 13,
        },
        SizeClass {
            bytes: 1_000_000,
            weight: 2,
        },
        SizeClass {
            bytes: 10_000_000,
            weight: 0,
        },
        SizeClass {
            bytes: 100_000_000,
            weight: 0,
        },
    ]
}

/// The scaled-down (÷100) variant for smoke runs, mirroring
/// `TABLE_I_SMALL`.
pub fn table1_classes_small() -> Vec<SizeClass> {
    table1_classes()
        .into_iter()
        .map(|c| SizeClass {
            bytes: (c.bytes / 100).max(16),
            weight: c.weight,
        })
        .collect()
}

/// Spatial pattern of one tenant's traffic: how an op's target node is
/// chosen given its client node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Spatial {
    /// Every node equally likely.
    Uniform,
    /// With probability `local_ppm` (parts per million) the target is a
    /// uniformly chosen member of the client's own rack; otherwise any
    /// node.
    RackLocal {
        /// Probability (ppm) of staying in the client's rack.
        local_ppm: u32,
    },
    /// With probability `hot_ppm` the target is a uniformly chosen
    /// member of pod `pod`; otherwise any node.
    HotPod {
        /// The popular pod.
        pod: usize,
        /// Probability (ppm) of hitting the popular pod.
        hot_ppm: u32,
    },
}

/// One tenant: a client population, an object catalog, and a load shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSpec {
    /// Node index range `[lo, hi)` hosting this tenant's clients.
    pub clients: (usize, usize),
    /// Objects in this tenant's pool on *each* node.
    pub objects_per_node: usize,
    /// Zipf popularity exponent, thousandths (900 ⇒ s = 0.9). Rank 0 of
    /// a pool is its hottest object.
    pub zipf_milli: u32,
    /// Target aggregate load, ops per second across all clients.
    pub ops_per_sec: u64,
    /// σ of the lognormal inter-arrival distribution, thousandths.
    /// The median is derived from `ops_per_sec` so the *mean* gap is
    /// exactly the target rate's reciprocal.
    pub sigma_milli: u32,
    /// Probability (ppm) that an op is a fresh-object put (churn)
    /// instead of a get against the catalog.
    pub put_ppm: u32,
    /// Spatial pattern of the tenant's traffic.
    pub spatial: Spatial,
}

/// A complete workload description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadSpec {
    /// Seed of every arrival gap and per-op choice.
    pub seed: u64,
    /// Total ops to emit across all tenants.
    pub ops: u64,
    /// Payload size classes (shared by all tenants).
    pub classes: Vec<SizeClass>,
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
}

/// What one scheduled op does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Get catalog object `object` of the `(tenant, target)` pool.
    Get,
    /// Create + seal a fresh churn object of `bytes` payload (placement
    /// falls where the ring puts it; `target`/`object` are unused).
    Put {
        /// Payload size in bytes.
        bytes: u64,
    },
}

/// One scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Virtual arrival time, nanoseconds from schedule start.
    pub at_ns: u64,
    /// Issuing tenant (index into [`WorkloadSpec::tenants`]).
    pub tenant: u16,
    /// Per-tenant sequence number (0-based).
    pub seq: u64,
    /// Node index issuing the op.
    pub client: u16,
    /// Node index whose pool the op targets (gets only).
    pub target: u16,
    /// Object index within the `(tenant, target)` pool (gets only).
    pub object: u32,
    /// Get or put.
    pub kind: OpKind,
}

/// A generated, time-ordered op schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Ops sorted by `(at_ns, tenant, seq)`.
    pub ops: Vec<Op>,
}

impl Schedule {
    /// Exact text serialization, one line per op — the byte-identity
    /// witness for determinism tests.
    pub fn serialize(&self) -> String {
        let mut out = String::with_capacity(self.ops.len() * 48);
        for op in &self.ops {
            let kind = match op.kind {
                OpKind::Get => "get".to_string(),
                OpKind::Put { bytes } => format!("put:{bytes}"),
            };
            out.push_str(&format!(
                "op at={} t={} seq={} c={} v={} o={} k={kind}\n",
                op.at_ns, op.tenant, op.seq, op.client, op.target, op.object
            ));
        }
        out
    }

    /// FNV-1a digest over every op field — a compact schedule identity
    /// for bench reports (equal digests ⇔ equal schedules, modulo hash
    /// collisions).
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for op in &self.ops {
            eat(op.at_ns);
            eat(u64::from(op.tenant));
            eat(op.seq);
            eat(u64::from(op.client));
            eat(u64::from(op.target));
            eat(u64::from(op.object));
            match op.kind {
                OpKind::Get => eat(0),
                OpKind::Put { bytes } => {
                    eat(1);
                    eat(bytes);
                }
            }
        }
        h
    }
}

/// One catalog entry: committed before the schedule runs, then served
/// to gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogObject {
    /// Owning tenant.
    pub tenant: u16,
    /// Node whose pool this object belongs to (its intended placement).
    pub home: u16,
    /// Index within the `(tenant, home)` pool (= its zipf rank).
    pub index: u32,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// Precomputed zipf(s) cumulative distribution over ranks `0..n`
/// (rank 0 hottest): `P(r) ∝ (r+1)^-s`.
#[derive(Debug, Clone)]
pub struct ZipfCdf {
    cum: Vec<f64>,
}

impl ZipfCdf {
    /// Build the CDF for `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> ZipfCdf {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cum = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 0..n {
            total += ((r + 1) as f64).powf(-s);
            cum.push(total);
        }
        ZipfCdf { cum }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cum.len()
    }

    /// True when the distribution has no ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cum.is_empty()
    }

    /// The rank whose CDF slot contains `u ∈ [0, 1)`.
    pub fn sample(&self, u: f64) -> usize {
        let needle = u * self.cum[self.cum.len() - 1];
        self.cum
            .partition_point(|&c| c <= needle)
            .min(self.cum.len() - 1)
    }

    /// Probability mass of rank `r`.
    pub fn mass(&self, r: usize) -> f64 {
        let total = self.cum[self.cum.len() - 1];
        let prev = if r == 0 { 0.0 } else { self.cum[r - 1] };
        (self.cum[r] - prev) / total
    }
}

impl WorkloadSpec {
    /// A balanced default workload for a fabric: three tenants covering
    /// the three spatial shapes — a rack-local bulk tenant (the common
    /// big-data case: shuffle partitions consumed near their producers),
    /// a uniform all-to-all tenant, and a hot-pod tenant modeling a
    /// skewed multi-tenant neighbor — emitting `ops` total operations.
    pub fn default_for(spec: &ClusterSpec, ops: u64) -> WorkloadSpec {
        let nodes = spec.nodes();
        WorkloadSpec {
            seed: spec.seed,
            ops,
            classes: table1_classes(),
            tenants: vec![
                TenantSpec {
                    clients: (0, nodes),
                    objects_per_node: 32,
                    zipf_milli: 900,
                    ops_per_sec: 20_000,
                    sigma_milli: 500,
                    put_ppm: 30_000,
                    spatial: Spatial::RackLocal { local_ppm: 700_000 },
                },
                TenantSpec {
                    clients: (0, nodes),
                    objects_per_node: 16,
                    zipf_milli: 700,
                    ops_per_sec: 8_000,
                    sigma_milli: 700,
                    put_ppm: 50_000,
                    spatial: Spatial::Uniform,
                },
                TenantSpec {
                    clients: (0, nodes),
                    objects_per_node: 16,
                    zipf_milli: 1_100,
                    ops_per_sec: 6_000,
                    sigma_milli: 400,
                    put_ppm: 20_000,
                    spatial: Spatial::HotPod {
                        pod: 0,
                        hot_ppm: 600_000,
                    },
                },
            ],
        }
    }

    /// Check the spec against a topology; returns the first problem.
    pub fn validate(&self, spec: &ClusterSpec) -> Result<(), String> {
        let nodes = spec.nodes();
        if self.tenants.is_empty() {
            return Err("workload has no tenants".into());
        }
        if self.classes.iter().all(|c| c.weight == 0) {
            return Err("all size classes have zero weight".into());
        }
        for (t, tenant) in self.tenants.iter().enumerate() {
            let (lo, hi) = tenant.clients;
            if lo >= hi || hi > nodes {
                return Err(format!(
                    "tenant {t}: client range {lo}..{hi} invalid for {nodes} nodes"
                ));
            }
            if tenant.objects_per_node == 0 {
                return Err(format!("tenant {t}: empty object pool"));
            }
            if tenant.ops_per_sec == 0 {
                return Err(format!("tenant {t}: zero target load"));
            }
            if let Spatial::HotPod { pod, .. } = tenant.spatial {
                if pod >= spec.pods {
                    return Err(format!("tenant {t}: hot pod {pod} out of range"));
                }
            }
        }
        Ok(())
    }

    /// The catalog this workload serves gets from: for every tenant, a
    /// pool of `objects_per_node` objects per node, sizes drawn from the
    /// class weights — each size a pure function of `(seed, tenant,
    /// home, index)`.
    pub fn catalog(&self, spec: &ClusterSpec) -> Vec<CatalogObject> {
        let nodes = spec.nodes();
        let mut out = Vec::new();
        for (t, tenant) in self.tenants.iter().enumerate() {
            for home in 0..nodes {
                for index in 0..tenant.objects_per_node {
                    let mut rng = SmallRng::seed_from_u64(mix(self.seed
                        ^ 0x0CA7_A106
                        ^ ((t as u64) << 48)
                        ^ ((home as u64) << 24)
                        ^ index as u64));
                    out.push(CatalogObject {
                        tenant: t as u16,
                        home: home as u16,
                        index: index as u32,
                        bytes: sample_class(&self.classes, &mut rng),
                    });
                }
            }
        }
        out
    }

    /// The mean inter-arrival gap of tenant `t`'s lognormal stream,
    /// with the median derived so the distribution's *mean* equals the
    /// reciprocal of the target rate: `median = mean · e^(−σ²/2)`.
    fn arrival_latency(&self, t: usize) -> Latency {
        let tenant = &self.tenants[t];
        let sigma = tenant.sigma_milli as f64 / 1000.0;
        let mean_secs = 1.0 / tenant.ops_per_sec as f64;
        let median_secs = mean_secs * (-sigma * sigma / 2.0).exp();
        if tenant.sigma_milli == 0 {
            Latency::Constant(Duration::from_secs_f64(mean_secs))
        } else {
            Latency::LogNormal {
                median: Duration::from_secs_f64(median_secs),
                sigma,
            }
        }
    }

    /// Seed of tenant `t`'s arrival-gap stream.
    fn arrival_seed(&self, t: usize) -> u64 {
        mix(self.seed ^ 0xA441_7A15 ^ t as u64)
    }

    /// Generate the schedule: per-tenant lognormal arrival streams
    /// merged in time order, each op's choices drawn from its own
    /// `(seed, tenant, seq)` coordinates. Panics on an invalid spec
    /// (see [`WorkloadSpec::validate`]).
    pub fn generate(&self, spec: &ClusterSpec) -> Schedule {
        self.validate(spec).expect("invalid workload spec");
        let nodes = spec.nodes();
        let zipfs: Vec<ZipfCdf> = self
            .tenants
            .iter()
            .map(|t| ZipfCdf::new(t.objects_per_node, t.zipf_milli as f64 / 1000.0))
            .collect();
        let arrivals: Vec<Latency> = (0..self.tenants.len())
            .map(|t| self.arrival_latency(t))
            .collect();

        // Min-heap of (next arrival, tenant, seq); ties break by tenant
        // then sequence, so the merge order is total and deterministic.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u16, u64)>> = (0..self.tenants.len())
            .map(|t| {
                let gap = arrivals[t].sample_at(self.arrival_seed(t), 0);
                std::cmp::Reverse((gap.as_nanos() as u64, t as u16, 0u64))
            })
            .collect();

        let mut ops = Vec::with_capacity(self.ops as usize);
        while ops.len() < self.ops as usize {
            let std::cmp::Reverse((at_ns, t, seq)) =
                heap.pop().expect("tenant streams are infinite");
            let tenant = &self.tenants[t as usize];
            let mut rng =
                SmallRng::seed_from_u64(mix(self.seed ^ 0x00E1_1E57 ^ ((t as u64) << 40) ^ seq));
            let (lo, hi) = tenant.clients;
            let client = rng.gen_range(lo..hi);
            let target = sample_target(spec, tenant.spatial, client, nodes, &mut rng);
            let object = zipfs[t as usize].sample(rng.gen::<f64>()) as u32;
            let kind = if rng.gen_range(0..1_000_000u32) < tenant.put_ppm {
                OpKind::Put {
                    bytes: sample_class(&self.classes, &mut rng),
                }
            } else {
                OpKind::Get
            };
            ops.push(Op {
                at_ns,
                tenant: t,
                seq,
                client: client as u16,
                target: target as u16,
                object,
                kind,
            });
            let gap = arrivals[t as usize].sample_at(self.arrival_seed(t as usize), seq + 1);
            heap.push(std::cmp::Reverse((
                at_ns.saturating_add(gap.as_nanos() as u64),
                t,
                seq + 1,
            )));
        }
        Schedule { ops }
    }

    /// Tenant `t`'s spatial traffic matrix: `matrix[c][v]` is the rate
    /// (ops/sec) of traffic from client node `c` to target node `v`.
    /// Each client row sums to the tenant's per-client share, and the
    /// whole matrix sums to `ops_per_sec` — the invariant the
    /// statistical sanity tests pin.
    pub fn traffic_matrix(&self, spec: &ClusterSpec, t: usize) -> Vec<Vec<f64>> {
        let nodes = spec.nodes();
        let tenant = &self.tenants[t];
        let (lo, hi) = tenant.clients;
        let per_client = tenant.ops_per_sec as f64 / (hi - lo) as f64;
        let mut matrix = vec![vec![0.0; nodes]; nodes];
        for (c, row) in matrix.iter_mut().enumerate().take(hi).skip(lo) {
            match tenant.spatial {
                Spatial::Uniform => {
                    for rate in row.iter_mut() {
                        *rate = per_client / nodes as f64;
                    }
                }
                Spatial::RackLocal { local_ppm } => {
                    let p = local_ppm as f64 / 1e6;
                    let rack = spec.rack_members(c);
                    let rack_size = rack.len() as f64;
                    for rate in row.iter_mut() {
                        *rate = (1.0 - p) * per_client / nodes as f64;
                    }
                    for v in rack {
                        row[v] += p * per_client / rack_size;
                    }
                }
                Spatial::HotPod { pod, hot_ppm } => {
                    let p = hot_ppm as f64 / 1e6;
                    let members = spec.pod_members(pod);
                    let pod_size = members.len() as f64;
                    for rate in row.iter_mut() {
                        *rate = (1.0 - p) * per_client / nodes as f64;
                    }
                    for v in members {
                        row[v] += p * per_client / pod_size;
                    }
                }
            }
        }
        matrix
    }

    /// Serialize to the stable text format (round-trips through
    /// [`WorkloadSpec::parse`]).
    pub fn serialize(&self) -> String {
        let mut out = format!("load v1 seed={} ops={}\n", self.seed, self.ops);
        for c in &self.classes {
            out.push_str(&format!("class bytes={} weight={}\n", c.bytes, c.weight));
        }
        for t in &self.tenants {
            let spatial = match t.spatial {
                Spatial::Uniform => "uniform".to_string(),
                Spatial::RackLocal { local_ppm } => format!("rack_local:{local_ppm}"),
                Spatial::HotPod { pod, hot_ppm } => format!("hot_pod:{pod}:{hot_ppm}"),
            };
            out.push_str(&format!(
                "tenant clients={}..{} objects_per_node={} zipf_milli={} rate={} \
                 sigma_milli={} put_ppm={} spatial={spatial}\n",
                t.clients.0,
                t.clients.1,
                t.objects_per_node,
                t.zipf_milli,
                t.ops_per_sec,
                t.sigma_milli,
                t.put_ppm,
            ));
        }
        out
    }

    /// Parse the text format produced by [`WorkloadSpec::serialize`].
    pub fn parse(text: &str) -> Result<WorkloadSpec, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty workload")?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("load") || parts.next() != Some("v1") {
            return Err(format!("bad load header: {header}"));
        }
        let mut load = WorkloadSpec {
            seed: 0,
            ops: 0,
            classes: Vec::new(),
            tenants: Vec::new(),
        };
        for kv in parts {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("bad token {kv}"))?;
            let n = v.parse::<u64>().map_err(|e| format!("{k}: {e}"))?;
            match k {
                "seed" => load.seed = n,
                "ops" => load.ops = n,
                _ => return Err(format!("unknown header field {k}")),
            }
        }
        for line in lines {
            let mut parts = line.split_whitespace();
            match parts.next() {
                Some("class") => {
                    let mut class = SizeClass {
                        bytes: 0,
                        weight: 0,
                    };
                    for kv in parts {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| format!("bad token {kv}"))?;
                        let n = v.parse::<u64>().map_err(|e| format!("{k}: {e}"))?;
                        match k {
                            "bytes" => class.bytes = n,
                            "weight" => class.weight = n as u32,
                            _ => return Err(format!("unknown class field {k}")),
                        }
                    }
                    load.classes.push(class);
                }
                Some("tenant") => {
                    let mut t = TenantSpec {
                        clients: (0, 0),
                        objects_per_node: 0,
                        zipf_milli: 0,
                        ops_per_sec: 0,
                        sigma_milli: 0,
                        put_ppm: 0,
                        spatial: Spatial::Uniform,
                    };
                    for kv in parts {
                        let (k, v) = kv
                            .split_once('=')
                            .ok_or_else(|| format!("bad token {kv}"))?;
                        match k {
                            "clients" => {
                                let (lo, hi) = v.split_once("..").ok_or("clients needs lo..hi")?;
                                t.clients = (
                                    lo.parse().map_err(|e| format!("clients lo: {e}"))?,
                                    hi.parse().map_err(|e| format!("clients hi: {e}"))?,
                                );
                            }
                            "objects_per_node" => {
                                t.objects_per_node = v.parse().map_err(|e| format!("{k}: {e}"))?;
                            }
                            "zipf_milli" => {
                                t.zipf_milli = v.parse().map_err(|e| format!("{k}: {e}"))?;
                            }
                            "rate" => {
                                t.ops_per_sec = v.parse().map_err(|e| format!("{k}: {e}"))?;
                            }
                            "sigma_milli" => {
                                t.sigma_milli = v.parse().map_err(|e| format!("{k}: {e}"))?;
                            }
                            "put_ppm" => {
                                t.put_ppm = v.parse().map_err(|e| format!("{k}: {e}"))?;
                            }
                            "spatial" => {
                                t.spatial = parse_spatial(v)?;
                            }
                            _ => return Err(format!("unknown tenant field {k}")),
                        }
                    }
                    load.tenants.push(t);
                }
                _ => return Err(format!("bad workload line: {line}")),
            }
        }
        if load.tenants.is_empty() {
            return Err("workload has no tenants".into());
        }
        Ok(load)
    }
}

fn parse_spatial(v: &str) -> Result<Spatial, String> {
    if v == "uniform" {
        return Ok(Spatial::Uniform);
    }
    if let Some(ppm) = v.strip_prefix("rack_local:") {
        return Ok(Spatial::RackLocal {
            local_ppm: ppm.parse().map_err(|e| format!("rack_local ppm: {e}"))?,
        });
    }
    if let Some(rest) = v.strip_prefix("hot_pod:") {
        let (pod, ppm) = rest.split_once(':').ok_or("hot_pod needs pod:ppm")?;
        return Ok(Spatial::HotPod {
            pod: pod.parse().map_err(|e| format!("hot pod: {e}"))?,
            hot_ppm: ppm.parse().map_err(|e| format!("hot_pod ppm: {e}"))?,
        });
    }
    Err(format!("unknown spatial pattern {v}"))
}

/// Draw a size from the class weights.
fn sample_class(classes: &[SizeClass], rng: &mut SmallRng) -> u64 {
    let total: u64 = classes.iter().map(|c| u64::from(c.weight)).sum();
    let mut needle = rng.gen_range(0..total.max(1));
    for c in classes {
        let w = u64::from(c.weight);
        if needle < w {
            return c.bytes;
        }
        needle -= w;
    }
    classes.last().map(|c| c.bytes).unwrap_or(0)
}

/// Draw an op's target node per the tenant's spatial pattern.
fn sample_target(
    spec: &ClusterSpec,
    spatial: Spatial,
    client: usize,
    nodes: usize,
    rng: &mut SmallRng,
) -> usize {
    match spatial {
        Spatial::Uniform => rng.gen_range(0..nodes),
        Spatial::RackLocal { local_ppm } => {
            if rng.gen_range(0..1_000_000u32) < local_ppm {
                let rack = spec.rack_members(client);
                rng.gen_range(rack.start..rack.end)
            } else {
                rng.gen_range(0..nodes)
            }
        }
        Spatial::HotPod { pod, hot_ppm } => {
            if rng.gen_range(0..1_000_000u32) < hot_ppm {
                let members = spec.pod_members(pod);
                rng.gen_range(members.start..members.end)
            } else {
                rng.gen_range(0..nodes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> ClusterSpec {
        ClusterSpec::small_fabric(5)
    }

    #[test]
    fn zipf_cdf_masses_sum_to_one_and_decrease() {
        let z = ZipfCdf::new(64, 0.9);
        let total: f64 = (0..64).map(|r| z.mass(r)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        for r in 1..64 {
            assert!(z.mass(r) < z.mass(r - 1), "rank {r} not less popular");
        }
        // Sampling hits the hottest rank most often at the boundaries.
        assert_eq!(z.sample(0.0), 0);
        assert_eq!(z.sample(0.999_999_9), 63);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = small_spec();
        let load = WorkloadSpec::default_for(&spec, 500);
        let a = load.generate(&spec);
        let b = load.generate(&spec);
        assert_eq!(a.serialize(), b.serialize());
        assert_eq!(a.digest(), b.digest());

        let mut other = load.clone();
        other.seed ^= 1;
        let c = other.generate(&spec);
        assert_ne!(a.serialize(), c.serialize());
    }

    #[test]
    fn schedule_is_time_ordered_and_fields_in_range() {
        let spec = small_spec();
        let load = WorkloadSpec::default_for(&spec, 1000);
        let s = load.generate(&spec);
        assert_eq!(s.ops.len(), 1000);
        let nodes = spec.nodes() as u16;
        for w in s.ops.windows(2) {
            assert!(
                (w[0].at_ns, w[0].tenant, w[0].seq) < (w[1].at_ns, w[1].tenant, w[1].seq),
                "schedule out of order"
            );
        }
        for op in &s.ops {
            assert!(op.client < nodes);
            assert!(op.target < nodes);
            let pool = load.tenants[op.tenant as usize].objects_per_node as u32;
            assert!(op.object < pool);
        }
        // All three tenants got airtime roughly proportional to rate.
        let t0 = s.ops.iter().filter(|o| o.tenant == 0).count();
        assert!(t0 > 400, "dominant tenant underrepresented: {t0}");
    }

    #[test]
    fn catalog_is_deterministic_and_covers_every_pool() {
        let spec = small_spec();
        let load = WorkloadSpec::default_for(&spec, 10);
        let a = load.catalog(&spec);
        assert_eq!(a, load.catalog(&spec));
        let expected: usize = load
            .tenants
            .iter()
            .map(|t| t.objects_per_node * spec.nodes())
            .sum();
        assert_eq!(a.len(), expected);
        assert!(a.iter().all(|o| o.bytes > 0));
    }

    #[test]
    fn workload_serialize_parse_round_trip() {
        let spec = small_spec();
        let load = WorkloadSpec::default_for(&spec, 123_456);
        let text = load.serialize();
        let back = WorkloadSpec::parse(&text).unwrap();
        assert_eq!(load, back);
        assert_eq!(text, back.serialize());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(WorkloadSpec::parse("").is_err());
        assert!(WorkloadSpec::parse("load v2 seed=1 ops=2").is_err());
        assert!(WorkloadSpec::parse("load v1 seed=1 ops=2").is_err()); // no tenants
        assert!(WorkloadSpec::parse("load v1 seed=1 ops=2\ntenant spatial=bogus").is_err());
    }

    #[test]
    fn validation_catches_bad_specs() {
        let spec = small_spec();
        let mut load = WorkloadSpec::default_for(&spec, 10);
        load.tenants[0].clients = (0, 100);
        assert!(load.validate(&spec).is_err());
        let mut load = WorkloadSpec::default_for(&spec, 10);
        load.tenants[0].ops_per_sec = 0;
        assert!(load.validate(&spec).is_err());
        let mut load = WorkloadSpec::default_for(&spec, 10);
        load.tenants[2].spatial = Spatial::HotPod { pod: 9, hot_ppm: 1 };
        assert!(load.validate(&spec).is_err());
    }
}
