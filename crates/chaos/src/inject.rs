//! The deterministic fault injector.
//!
//! [`ChaosInjector`] implements [`ipc::fault::FaultPolicy`]: plugged into
//! a cluster's interconnect (see `disagg::ClusterConfig::fault_policy`),
//! it decides the fate of every store-to-store frame. The core property
//! is that every decision is a **pure function of its coordinates** —
//! `(plan, link, direction, sequence number)` — computed by
//! [`ChaosInjector::decision_at`]. The injector's only mutable state is a
//! per-(link, direction) frame counter, so the schedule each stream sees
//! is byte-identical across runs regardless of thread interleaving; only
//! *which* frame carries a given sequence number can vary.
//!
//! Structural faults come first: a partitioned direction drops every
//! frame, a frozen node holds every frame for the step's freeze
//! duration. Otherwise one uniform draw in `[0, 1e6)` is compared against
//! the step's cumulative ppm rates to pick drop / delay / duplicate /
//! corrupt / truncate / deliver.

use crate::plan::FaultPlan;
use ipc::fault::{Direction, FaultAction, FaultPolicy};
use ipc::Frame;
use netsim::Latency;
use obs::{MetricsSnapshot, Registry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// FNV-1a over the link label: gives each link its own decision stream.
fn hash_link(link: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in link.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// SplitMix64 finalizer: decorrelates the packed decision coordinates.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Parse a cluster link label `"i->j"` into `(i, j)`.
fn parse_link(link: &str) -> Option<(usize, usize)> {
    let (a, b) = link.split_once("->")?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

/// A seeded, plan-driven [`FaultPolicy`]. See the module docs.
pub struct ChaosInjector {
    plan: FaultPlan,
    seqs: Mutex<HashMap<(String, u8), u64>>,
    armed: AtomicBool,
    registry: Arc<Registry>,
}

impl ChaosInjector {
    /// Build an injector for `plan`. It starts armed.
    pub fn new(plan: FaultPlan) -> Arc<ChaosInjector> {
        Arc::new(ChaosInjector {
            plan,
            seqs: Mutex::new(HashMap::new()),
            armed: AtomicBool::new(true),
            registry: Registry::new(),
        })
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Stop injecting: every subsequent frame is delivered untouched.
    /// The soak runner calls this before its settle phase so in-flight
    /// state (parked releases, retries) can drain on a clean network.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Whether the injector is currently injecting.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// Snapshot of the `chaos.*` fault-injection counters: one counter
    /// per action kind (`chaos.drop`, `chaos.delay`, `chaos.duplicate`,
    /// `chaos.corrupt`, `chaos.truncate`, `chaos.partition_drop`,
    /// `chaos.freeze_delay`, `chaos.deliver`).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Total frames the injector interfered with (everything except
    /// plain delivery).
    pub fn injected_faults(&self) -> u64 {
        let snap = self.registry.snapshot();
        snap.counter_sum("chaos.") - snap.counter("chaos.deliver")
    }

    /// The fate of frame number `seq` of stream `(link, dir)` carrying
    /// `len` payload bytes — a pure function: no state is read or
    /// written, so the full schedule can be tabulated independently of
    /// any run. [`FaultPolicy::on_frame`] is this plus the per-stream
    /// frame counter and the counters.
    pub fn decision_at(&self, link: &str, dir: Direction, seq: u64, len: usize) -> FaultAction {
        let step_idx = (seq / self.plan.span.max(1)).min(self.plan.steps.len() as u64 - 1);
        let step = &self.plan.steps[step_idx as usize];

        // Structural faults first. The wrapped connection is node i's
        // client dialing node j on link "i->j": outbound frames travel
        // i→j (requests), inbound frames travel j→i (responses).
        if let Some((src, dst)) = parse_link(link) {
            let (from, to) = match dir {
                Direction::Outbound => (src, dst),
                Direction::Inbound => (dst, src),
            };
            for p in &step.partitions {
                let cut = if p.one_way {
                    from == p.a && to == p.b
                } else {
                    (from == p.a && to == p.b) || (from == p.b && to == p.a)
                };
                if cut {
                    return FaultAction::Drop;
                }
            }
            if step.frozen.contains(&from) || step.frozen.contains(&to) {
                return FaultAction::Delay(Duration::from_micros(step.freeze_hold_us));
            }
        }

        // One uniform draw against the cumulative ppm ladder.
        let coord = mix(self.plan.seed)
            ^ mix(hash_link(link).wrapping_add(dir.index()))
            ^ mix(seq.wrapping_mul(2).wrapping_add(1));
        let roll = (mix(coord) % 1_000_000) as u32;
        let mut threshold = step.drop_ppm;
        if roll < threshold {
            return FaultAction::Drop;
        }
        threshold = threshold.saturating_add(step.delay_ppm);
        if roll < threshold {
            let lat = Latency::Uniform {
                lo: Duration::from_micros(step.delay_lo_us),
                hi: Duration::from_micros(step.delay_hi_us.max(step.delay_lo_us)),
            };
            return FaultAction::Delay(lat.sample_at(coord, seq));
        }
        threshold = threshold.saturating_add(step.dup_ppm);
        if roll < threshold {
            return FaultAction::Duplicate;
        }
        threshold = threshold.saturating_add(step.corrupt_ppm);
        if roll < threshold && len > 0 {
            let detail = mix(coord ^ 0xC0DE);
            return FaultAction::Corrupt {
                offset: (detail as usize) % len,
                mask: ((detail >> 32) % 255 + 1) as u8,
            };
        }
        threshold = threshold.saturating_add(step.truncate_ppm);
        if roll < threshold && len > 0 {
            return FaultAction::Truncate {
                keep: (mix(coord ^ 0x7121C) as usize) % len,
            };
        }
        FaultAction::Deliver
    }

    fn count(&self, action: &FaultAction, structural: bool) {
        let name = match action {
            FaultAction::Deliver => "chaos.deliver",
            FaultAction::Drop if structural => "chaos.partition_drop",
            FaultAction::Drop => "chaos.drop",
            FaultAction::Delay(_) if structural => "chaos.freeze_delay",
            FaultAction::Delay(_) => "chaos.delay",
            FaultAction::Duplicate => "chaos.duplicate",
            FaultAction::Corrupt { .. } => "chaos.corrupt",
            FaultAction::Truncate { .. } => "chaos.truncate",
        };
        self.registry.counter(name).inc();
    }
}

impl FaultPolicy for ChaosInjector {
    fn on_frame(&self, link: &str, dir: Direction, frame: &Frame) -> FaultAction {
        if !self.armed.load(Ordering::Relaxed) {
            return FaultAction::Deliver;
        }
        let seq = {
            let mut seqs = self.seqs.lock();
            let counter = seqs
                .entry((link.to_string(), dir.index() as u8))
                .or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        let action = self.decision_at(link, dir, seq, frame.payload.len());
        // Structural = decided before the rate ladder; recompute the
        // distinction for labeling only (cheap: both branches are pure).
        let structural = {
            let step_idx = (seq / self.plan.span.max(1)).min(self.plan.steps.len() as u64 - 1);
            let step = &self.plan.steps[step_idx as usize];
            match parse_link(link) {
                Some((src, dst)) => {
                    !step.partitions.is_empty()
                        || step.frozen.contains(&src)
                        || step.frozen.contains(&dst)
                }
                None => false,
            }
        };
        self.count(&action, structural);
        action
    }
}

impl std::fmt::Debug for ChaosInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosInjector")
            .field("steps", &self.plan.steps.len())
            .field("armed", &self.is_armed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Partition, StepPlan};

    fn busy_plan() -> FaultPlan {
        FaultPlan {
            seed: 11,
            span: 100,
            steps: vec![
                StepPlan {
                    drop_ppm: 200_000,
                    delay_ppm: 200_000,
                    dup_ppm: 100_000,
                    corrupt_ppm: 100_000,
                    truncate_ppm: 100_000,
                    delay_lo_us: 10,
                    delay_hi_us: 100,
                    ..StepPlan::quiet()
                },
                StepPlan::quiet(),
            ],
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_coordinates() {
        let a = ChaosInjector::new(busy_plan());
        let b = ChaosInjector::new(busy_plan());
        for seq in 0..500 {
            for dir in [Direction::Outbound, Direction::Inbound] {
                assert_eq!(
                    a.decision_at("0->1", dir, seq, 64),
                    b.decision_at("0->1", dir, seq, 64)
                );
            }
        }
        // Different links see different schedules.
        let grid_a: Vec<_> = (0..500)
            .map(|s| a.decision_at("0->1", Direction::Outbound, s, 64))
            .collect();
        let grid_b: Vec<_> = (0..500)
            .map(|s| a.decision_at("1->0", Direction::Outbound, s, 64))
            .collect();
        assert_ne!(grid_a, grid_b);
    }

    #[test]
    fn steps_advance_by_sequence_and_clamp() {
        let inj = ChaosInjector::new(busy_plan());
        // Step 0 (seqs 0..100) injects heavily; step 1 (quiet) never does.
        let faults_step0 = (0..100)
            .filter(|&s| {
                inj.decision_at("0->1", Direction::Outbound, s, 64) != FaultAction::Deliver
            })
            .count();
        assert!(
            faults_step0 > 30,
            "expected heavy injection, got {faults_step0}"
        );
        for seq in 100..1000 {
            assert_eq!(
                inj.decision_at("0->1", Direction::Outbound, seq, 64),
                FaultAction::Deliver,
                "quiet final step must deliver (seq {seq})"
            );
        }
    }

    #[test]
    fn partitions_cut_the_right_directions() {
        let mut plan = FaultPlan::quiet(5);
        plan.span = u64::MAX;
        plan.steps[0].partitions = vec![Partition {
            a: 0,
            b: 1,
            one_way: true,
        }];
        let inj = ChaosInjector::new(plan);
        // 0→1 bytes: requests on 0->1 and responses on 1->0.
        assert_eq!(
            inj.decision_at("0->1", Direction::Outbound, 0, 8),
            FaultAction::Drop
        );
        assert_eq!(
            inj.decision_at("1->0", Direction::Inbound, 0, 8),
            FaultAction::Drop
        );
        // 1→0 bytes flow freely.
        assert_eq!(
            inj.decision_at("1->0", Direction::Outbound, 0, 8),
            FaultAction::Deliver
        );
        assert_eq!(
            inj.decision_at("0->1", Direction::Inbound, 0, 8),
            FaultAction::Deliver
        );
        // Unrelated links untouched.
        assert_eq!(
            inj.decision_at("2->1", Direction::Outbound, 0, 8),
            FaultAction::Deliver
        );
    }

    #[test]
    fn frozen_node_delays_both_directions() {
        let mut plan = FaultPlan::quiet(5);
        plan.steps[0].frozen = vec![1];
        plan.steps[0].freeze_hold_us = 750;
        let inj = ChaosInjector::new(plan);
        let hold = FaultAction::Delay(Duration::from_micros(750));
        assert_eq!(inj.decision_at("0->1", Direction::Outbound, 0, 8), hold);
        assert_eq!(inj.decision_at("0->1", Direction::Inbound, 0, 8), hold);
        assert_eq!(inj.decision_at("1->2", Direction::Outbound, 0, 8), hold);
        assert_eq!(
            inj.decision_at("0->2", Direction::Outbound, 0, 8),
            FaultAction::Deliver
        );
    }

    #[test]
    fn disarm_stops_injection_and_counters_track() {
        let inj = ChaosInjector::new(FaultPlan {
            seed: 1,
            span: u64::MAX,
            steps: vec![StepPlan {
                drop_ppm: 1_000_000,
                ..StepPlan::quiet()
            }],
        });
        let frame = Frame::new(1, vec![0u8; 16]);
        assert_eq!(
            inj.on_frame("0->1", Direction::Outbound, &frame),
            FaultAction::Drop
        );
        inj.disarm();
        assert_eq!(
            inj.on_frame("0->1", Direction::Outbound, &frame),
            FaultAction::Deliver
        );
        let snap = inj.metrics_snapshot();
        assert_eq!(snap.counter("chaos.drop"), 1);
        assert_eq!(inj.injected_faults(), 1);
    }
}
