//! # memalloc — region allocators for disaggregated memory
//!
//! The original Plasma store allocates objects with dlmalloc over memory
//! obtained from a file-descriptor/mmap dance. The paper replaces this with
//! "a simple allocation algorithm that receives the memory-mapped local
//! disaggregated memory region" and tracks free regions in "an ordered map
//! data structure with logarithmic time look-up".
//!
//! This crate implements that replacement *and* the alternatives needed for
//! the allocator ablation the paper defers to future work:
//!
//! * [`FirstFit`] — scans free regions in address order and takes the first
//!   that fits (the literal reading of the paper's description).
//! * [`SizeMap`] — keeps free regions in a size-ordered map and takes the
//!   smallest that fits in `O(log n)` (the paper's stated data structure;
//!   equivalently, best-fit).
//! * [`DlSeg`] — a dlmalloc-flavoured segregated-bin allocator standing in
//!   for the dlmalloc baseline the paper removed.
//! * [`Slab`] — size-class slabs over segment arenas tuned to the Table I
//!   object-size distribution: O(1) allocation from per-class free-slot
//!   lists, oversize requests falling through to first-fit (the store's
//!   concurrent hot-path allocator; see `slab.rs`).
//!
//! All allocators implement [`RegionAllocator`], operate on offsets into a
//! caller-owned region (they never touch memory themselves), coalesce
//! adjacent free regions on `free`, support power-of-two alignment, and
//! report [`AllocStats`] including fragmentation indicators.

pub mod buddy;
pub mod dlseg;
pub mod firstfit;
pub mod freemap;
pub mod sizemap;
pub mod slab;
pub mod stats;
pub mod trace;

pub use buddy::Buddy;
pub use dlseg::DlSeg;
pub use firstfit::FirstFit;
pub use sizemap::SizeMap;
pub use slab::{Slab, SIZE_CLASSES};
pub use stats::{AllocStats, ClassOccupancy};
pub use trace::{Trace, TraceOp, TraceSpec};

use std::fmt;

/// Errors returned by region allocators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free region can satisfy the request (possibly due to
    /// fragmentation: total free space may exceed the request).
    OutOfMemory { requested: u64, free: u64 },
    /// A zero-sized allocation was requested.
    ZeroSize,
    /// Alignment is not a power of two.
    BadAlign(u64),
    /// `free` was called with an offset that is not a live allocation.
    UnknownAllocation(u64),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { requested, free } => {
                write!(f, "out of memory: requested {requested} bytes, {free} free")
            }
            AllocError::ZeroSize => write!(f, "zero-sized allocation"),
            AllocError::BadAlign(a) => write!(f, "alignment {a} is not a power of two"),
            AllocError::UnknownAllocation(o) => write!(f, "offset {o} is not a live allocation"),
        }
    }
}

impl std::error::Error for AllocError {}

/// Default alignment for object allocations (cacheline-friendly).
pub const DEFAULT_ALIGN: u64 = 64;

/// A bookkeeping-only allocator over a `[0, capacity)` offset space.
pub trait RegionAllocator: Send {
    /// Allocate `size` bytes aligned to `align` (a power of two). Returns
    /// the offset of the allocation.
    fn alloc_aligned(&mut self, size: u64, align: u64) -> Result<u64, AllocError>;

    /// Allocate `size` bytes at [`DEFAULT_ALIGN`].
    fn alloc(&mut self, size: u64) -> Result<u64, AllocError> {
        self.alloc_aligned(size, DEFAULT_ALIGN)
    }

    /// Free a previous allocation by its offset.
    fn free(&mut self, offset: u64) -> Result<(), AllocError>;

    /// Size of the live allocation at `offset`, if any.
    fn allocation_size(&self, offset: u64) -> Option<u64>;

    /// Total region capacity in bytes.
    fn capacity(&self) -> u64;

    /// Current statistics.
    fn stats(&self) -> AllocStats;

    /// Per-size-class occupancy, for allocators that segregate by class.
    /// Empty for allocators without classes.
    fn class_stats(&self) -> Vec<ClassOccupancy> {
        Vec::new()
    }

    /// Short human-readable allocator name (for benchmark tables).
    fn name(&self) -> &'static str;
}

pub(crate) fn check_request(size: u64, align: u64) -> Result<(), AllocError> {
    if size == 0 {
        return Err(AllocError::ZeroSize);
    }
    if !align.is_power_of_two() {
        return Err(AllocError::BadAlign(align));
    }
    Ok(())
}

pub(crate) fn align_up(x: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (x + align - 1) & !(align - 1)
}

#[cfg(test)]
mod conformance {
    //! Behavioural conformance tests run against every allocator, plus
    //! property-based invariants.

    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn allocators(capacity: u64) -> Vec<Box<dyn RegionAllocator>> {
        vec![
            Box::new(FirstFit::new(capacity)),
            Box::new(SizeMap::new(capacity)),
            Box::new(DlSeg::new(capacity)),
            Box::new(Buddy::new(capacity)),
            Box::new(Slab::new(capacity)),
        ]
    }

    #[test]
    fn alloc_free_roundtrip() {
        for mut a in allocators(1 << 20) {
            let off = a.alloc(1000).unwrap();
            assert_eq!(a.allocation_size(off), Some(1000));
            a.free(off).unwrap();
            assert_eq!(a.allocation_size(off), None);
            assert_eq!(a.stats().allocated_bytes, 0);
        }
    }

    #[test]
    fn rejects_zero_and_bad_align() {
        for mut a in allocators(1 << 20) {
            assert_eq!(a.alloc(0), Err(AllocError::ZeroSize));
            assert_eq!(a.alloc_aligned(8, 3), Err(AllocError::BadAlign(3)));
        }
    }

    #[test]
    fn rejects_unknown_free_and_double_free() {
        for mut a in allocators(1 << 20) {
            assert_eq!(a.free(0), Err(AllocError::UnknownAllocation(0)));
            let off = a.alloc(64).unwrap();
            a.free(off).unwrap();
            assert_eq!(a.free(off), Err(AllocError::UnknownAllocation(off)));
        }
    }

    #[test]
    fn out_of_memory_reports_free_bytes() {
        for mut a in allocators(4096) {
            let _ = a.alloc(2048).unwrap();
            match a.alloc(4096) {
                Err(AllocError::OutOfMemory { requested, free }) => {
                    assert_eq!(requested, 4096);
                    assert!(free <= 2048);
                }
                other => panic!("expected OOM, got {other:?}"),
            }
        }
    }

    #[test]
    fn coalescing_allows_full_reuse() {
        for mut a in allocators(1 << 16) {
            // Fill the region with adjacent allocations, free all, then the
            // full capacity must be allocatable again (requires coalescing).
            let mut offs = Vec::new();
            while let Ok(o) = a.alloc(4096) {
                offs.push(o);
            }
            assert!(offs.len() >= 15, "{}: got {}", a.name(), offs.len());
            for o in offs {
                a.free(o).unwrap();
            }
            let o = a.alloc((1 << 16) - 64).unwrap();
            a.free(o).unwrap();
        }
    }

    #[test]
    fn alignment_is_respected() {
        for mut a in allocators(1 << 20) {
            for align in [1u64, 64, 256, 4096] {
                // Perturb the layout with an odd-sized allocation.
                let pad = a.alloc_aligned(37, 1).unwrap();
                let off = a.alloc_aligned(100, align).unwrap();
                assert_eq!(off % align, 0, "{}: align {align}", a.name());
                a.free(off).unwrap();
                a.free(pad).unwrap();
            }
        }
    }

    #[test]
    fn allocations_do_not_overlap() {
        for mut a in allocators(1 << 18) {
            let mut live: Vec<(u64, u64)> = Vec::new();
            for i in 0..64u64 {
                let size = 100 + i * 37;
                if let Ok(off) = a.alloc(size) {
                    for &(o, s) in &live {
                        assert!(
                            off + size <= o || o + s <= off,
                            "{}: [{off},{}) overlaps [{o},{})",
                            a.name(),
                            off + size,
                            o + s
                        );
                    }
                    live.push((off, size));
                }
            }
        }
    }

    #[test]
    fn stats_track_peaks_and_failures() {
        for mut a in allocators(8192) {
            let x = a.alloc(4096).unwrap();
            let _ = a.alloc(8192); // fails
            let s = a.stats();
            assert_eq!(s.total_allocs, 1);
            assert_eq!(s.failed_allocs, 1);
            assert_eq!(s.live_allocs, 1);
            assert!(s.allocated_bytes >= 4096);
            a.free(x).unwrap();
            assert_eq!(a.stats().total_frees, 1);
        }
    }

    /// Reference model: allocations must never overlap, never exceed
    /// capacity, and freeing must always return memory.
    fn run_model(mut a: Box<dyn RegionAllocator>, ops: &[(bool, u64)]) {
        let cap = a.capacity();
        let mut live: BTreeMap<u64, u64> = BTreeMap::new();
        for &(is_alloc, v) in ops {
            if is_alloc {
                let size = v % 5000 + 1;
                if let Ok(off) = a.alloc(size) {
                    assert!(off + size <= cap, "{}: past end", a.name());
                    // No overlap with any live allocation.
                    if let Some((&po, &ps)) = live.range(..=off).next_back() {
                        assert!(po + ps <= off, "{}: overlap below", a.name());
                    }
                    if let Some((&no, _)) = live.range(off + 1..).next() {
                        assert!(off + size <= no, "{}: overlap above", a.name());
                    }
                    live.insert(off, size);
                }
            } else if !live.is_empty() {
                let idx = (v as usize) % live.len();
                let &off = live.keys().nth(idx).unwrap();
                live.remove(&off);
                a.free(off).unwrap();
            }
            let s = a.stats();
            assert_eq!(s.live_allocs as usize, live.len(), "{}", a.name());
        }
        // Drain and verify the region is fully reusable.
        let keys: Vec<u64> = live.keys().copied().collect();
        for off in keys {
            a.free(off).unwrap();
        }
        assert_eq!(a.stats().allocated_bytes, 0);
        let all = a.alloc_aligned(cap, 1).unwrap();
        a.free(all).unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn model_first_fit(ops in proptest::collection::vec((any::<bool>(), any::<u64>()), 1..200)) {
            run_model(Box::new(FirstFit::new(1 << 20)), &ops);
        }

        #[test]
        fn model_size_map(ops in proptest::collection::vec((any::<bool>(), any::<u64>()), 1..200)) {
            run_model(Box::new(SizeMap::new(1 << 20)), &ops);
        }

        #[test]
        fn model_dlseg(ops in proptest::collection::vec((any::<bool>(), any::<u64>()), 1..200)) {
            run_model(Box::new(DlSeg::new(1 << 20)), &ops);
        }

        #[test]
        fn model_buddy(ops in proptest::collection::vec((any::<bool>(), any::<u64>()), 1..200)) {
            run_model(Box::new(Buddy::new(1 << 20)), &ops);
        }

        #[test]
        fn model_slab(ops in proptest::collection::vec((any::<bool>(), any::<u64>()), 1..200)) {
            run_model(Box::new(Slab::new(1 << 20)), &ops);
        }
    }
}
