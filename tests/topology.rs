//! Topology model + workload generator acceptance: determinism property
//! tests (same `(spec, seed)` ⇒ byte-identical schedules and delay
//! streams; serialization round-trips exactly) and statistical sanity
//! checks on fixed seeds (zipf rank-frequency slope, lognormal
//! inter-arrival mean vs target load, spatial traffic-matrix row sums).

use proptest::prelude::*;
use std::time::Duration;
use topo::{ClusterSpec, Spatial, TenantSpec, Tier, TierLink, WorkloadSpec};

// ---------------------------------------------------------------------
// Determinism property tests (mirroring ring.rs's proptest style).
// ---------------------------------------------------------------------

/// Strategy for one tier's link parameters (the vendored proptest has
/// no `prop_compose!`, so structs are drawn as tuples and assembled).
fn link_of((median_us, sigma_milli, bytes_per_us): (u64, u32, u64)) -> TierLink {
    TierLink {
        median_us,
        sigma_milli,
        bytes_per_us,
    }
}

const LINK_RANGES: (
    std::ops::Range<u64>,
    std::ops::Range<u32>,
    std::ops::Range<u64>,
) = (0..10_000, 0..900, 0..4_000);

proptest! {
    /// Spec serialization is exact: parse(serialize(spec)) == spec for
    /// arbitrary shapes, links and seeds (integer wire format, no float
    /// round-off anywhere).
    #[test]
    fn spec_serialization_round_trips(
        (pods, racks, hosts) in (1usize..4, 1usize..4, 1usize..4),
        seed in any::<u64>(),
        intra in LINK_RANGES,
        rack in LINK_RANGES,
        pod in LINK_RANGES,
    ) {
        let spec = ClusterSpec {
            pods,
            racks_per_pod: racks,
            hosts_per_rack: hosts,
            seed,
            intra_rack: link_of(intra),
            cross_rack: link_of(rack),
            cross_pod: link_of(pod),
        };
        let text = spec.serialize();
        let back = ClusterSpec::parse(&text).unwrap();
        prop_assert_eq!(&spec, &back);
        prop_assert_eq!(text, back.serialize());
    }

    /// The link-delay stream is a pure function of `(spec, pair, seq)`:
    /// equal specs replay byte-identical delays in any sampling order,
    /// and a different seed produces a different stream.
    #[test]
    fn delay_streams_replay_exactly(seed in any::<u64>(), payload in 0usize..65_536) {
        let spec = ClusterSpec::small_fabric(seed);
        let twin = ClusterSpec::small_fabric(seed);
        let pairs = [(0usize, 1usize), (1, 0), (0, 2), (0, 4), (3, 7)];
        for (i, j) in pairs {
            let forward: Vec<Duration> =
                (0..32).map(|s| spec.delay_at(i, j, payload, s)).collect();
            let replayed: Vec<Duration> =
                (0..32).rev().map(|s| twin.delay_at(i, j, payload, s)).collect();
            prop_assert_eq!(
                &forward,
                &replayed.into_iter().rev().collect::<Vec<_>>(),
                "pair ({}, {}) diverged", i, j
            );
        }
        let other = ClusterSpec::small_fabric(seed ^ 0x5555_5555);
        prop_assert_ne!(
            (0..32).map(|s| spec.delay_at(0, 1, payload, s)).collect::<Vec<_>>(),
            (0..32).map(|s| other.delay_at(0, 1, payload, s)).collect::<Vec<_>>()
        );
    }

    /// Same `(spec, seed)` ⇒ byte-identical op schedule; different seeds
    /// ⇒ distinct schedules; and the workload spec round-trips through
    /// its text format.
    #[test]
    fn schedules_are_seed_deterministic(seed in any::<u64>(), ops in 50u64..300) {
        let spec = ClusterSpec::small_fabric(seed);
        let load = WorkloadSpec::default_for(&spec, ops);
        let a = load.generate(&spec);
        let b = WorkloadSpec::parse(&load.serialize()).unwrap().generate(&spec);
        prop_assert_eq!(a.serialize(), b.serialize());
        prop_assert_eq!(a.digest(), b.digest());

        let mut reseeded = load.clone();
        reseeded.seed = seed.wrapping_add(1);
        prop_assert_ne!(a.serialize(), reseeded.generate(&spec).serialize());
    }
}

// ---------------------------------------------------------------------
// Statistical sanity on fixed seeds (non-flaky by construction: every
// draw is a pure function of the hard-coded seed).
// ---------------------------------------------------------------------

/// One-tenant workload with explicit knobs, for isolating a statistic.
fn single_tenant(_spec: &ClusterSpec, seed: u64, ops: u64, tenant: TenantSpec) -> WorkloadSpec {
    WorkloadSpec {
        seed,
        ops,
        classes: topo::workload::table1_classes_small(),
        tenants: vec![tenant],
    }
}

/// Empirical zipf check: the rank-frequency line of object picks must
/// have slope ≈ −s in log-log space. Least-squares fit over the head of
/// the distribution (the tail of a finite sample is noise).
#[test]
fn zipf_rank_frequency_slope_matches_configured_exponent() {
    let spec = ClusterSpec::small_fabric(0xA11CE);
    let s = 0.9;
    let load = single_tenant(
        &spec,
        0xA11CE,
        120_000,
        TenantSpec {
            clients: (0, spec.nodes()),
            objects_per_node: 64,
            zipf_milli: 900,
            ops_per_sec: 10_000,
            sigma_milli: 500,
            put_ppm: 0,
            spatial: Spatial::Uniform,
        },
    );
    let schedule = load.generate(&spec);

    // Object index == zipf rank within its pool; aggregate over pools.
    let mut counts = vec![0u64; 64];
    for op in &schedule.ops {
        counts[op.object as usize] += 1;
    }
    let head = 24; // ~89% of the mass at s = 0.9 over 64 ranks
    let points: Vec<(f64, f64)> = (0..head)
        .map(|r| (((r + 1) as f64).ln(), (counts[r] as f64).ln()))
        .collect();
    let n = points.len() as f64;
    let (sx, sy): (f64, f64) = points
        .iter()
        .fold((0.0, 0.0), |(a, b), (x, y)| (a + x, b + y));
    let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    assert!(
        (slope + s).abs() < 0.08,
        "rank-frequency slope {slope:.3} not within 0.08 of -{s}"
    );
}

/// The lognormal arrival stream's empirical rate must match the
/// configured target load within 5% — the median-from-mean derivation
/// under test.
#[test]
fn inter_arrival_mean_tracks_target_load() {
    let spec = ClusterSpec::small_fabric(0xBEE5);
    let rate = 25_000u64;
    let ops = 100_000u64;
    let load = single_tenant(
        &spec,
        0xBEE5,
        ops,
        TenantSpec {
            clients: (0, spec.nodes()),
            objects_per_node: 16,
            zipf_milli: 800,
            ops_per_sec: rate,
            sigma_milli: 700,
            put_ppm: 0,
            spatial: Spatial::Uniform,
        },
    );
    let schedule = load.generate(&spec);
    let span_secs = schedule.ops.last().unwrap().at_ns as f64 / 1e9;
    let empirical = (ops - 1) as f64 / span_secs;
    let err = (empirical - rate as f64).abs() / rate as f64;
    assert!(
        err < 0.05,
        "empirical rate {empirical:.0} ops/s deviates {:.1}% from target {rate}",
        err * 100.0
    );
}

/// The analytic traffic matrix conserves load exactly: every client row
/// sums to its per-client share, the whole matrix to the tenant's rate —
/// for each spatial pattern.
#[test]
fn traffic_matrix_rows_sum_to_configured_rate() {
    let spec = ClusterSpec::small_fabric(3);
    let rate = 12_000u64;
    for spatial in [
        Spatial::Uniform,
        Spatial::RackLocal { local_ppm: 700_000 },
        Spatial::HotPod {
            pod: 1,
            hot_ppm: 550_000,
        },
    ] {
        let load = single_tenant(
            &spec,
            3,
            10,
            TenantSpec {
                clients: (0, spec.nodes()),
                objects_per_node: 8,
                zipf_milli: 900,
                ops_per_sec: rate,
                sigma_milli: 400,
                put_ppm: 0,
                spatial,
            },
        );
        let matrix = load.traffic_matrix(&spec, 0);
        let per_client = rate as f64 / spec.nodes() as f64;
        let mut total = 0.0;
        for (c, row) in matrix.iter().enumerate() {
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - per_client).abs() < 1e-9 * per_client,
                "{spatial:?}: client {c} row sums to {sum}, want {per_client}"
            );
            total += sum;
        }
        assert!((total - rate as f64).abs() < 1e-9 * rate as f64);
    }
}

/// The empirical spatial split agrees with the analytic matrix: a
/// rack-local tenant's ops hit their own rack at ≈ the configured
/// probability (plus the uniform spillover landing there by chance).
#[test]
fn rack_local_skew_is_realized_in_the_schedule() {
    let spec = ClusterSpec::small_fabric(0xD0E);
    let local_ppm = 700_000u32;
    let load = single_tenant(
        &spec,
        0xD0E,
        60_000,
        TenantSpec {
            clients: (0, spec.nodes()),
            objects_per_node: 16,
            zipf_milli: 900,
            ops_per_sec: 10_000,
            sigma_milli: 500,
            put_ppm: 0,
            spatial: Spatial::RackLocal { local_ppm },
        },
    );
    let schedule = load.generate(&spec);
    let in_rack = schedule
        .ops
        .iter()
        .filter(|op| spec.rack_of(op.client as usize) == spec.rack_of(op.target as usize))
        .count() as f64
        / schedule.ops.len() as f64;
    // p + (1 - p) * hosts_per_rack / nodes = 0.7 + 0.3 * 2/8 = 0.775
    let expected = 0.7 + 0.3 * (spec.hosts_per_rack as f64 / spec.nodes() as f64);
    assert!(
        (in_rack - expected).abs() < 0.02,
        "rack-local fraction {in_rack:.3}, want ≈ {expected:.3}"
    );
    // And the catalog gets issued over the fabric cover all three
    // network tiers (the generator exercises every link class).
    for tier in Tier::NETWORK {
        assert!(
            schedule
                .ops
                .iter()
                .any(|op| spec.tier(op.client as usize, op.target as usize) == tier),
            "no traffic on {tier:?}"
        );
    }
}
