//! Client ↔ store IPC protocol.
//!
//! Request/response messages carried in [`ipc::Frame`]s. The response to a
//! `Get` carries [`ObjectLocation`]s — segment key + offset — rather than
//! data: like real Plasma's file-descriptor handoff, the client maps the
//! (disaggregated) segment itself and reads the buffer directly, so object
//! payloads never traverse the IPC channel.

use crate::error::PlasmaError;
use crate::id::{ObjectId, OBJECT_ID_LEN};
use crate::object::{ObjectInfo, ObjectLocation, ObjectState};
use crate::store::StoreStats;
use ipc::{CodecError, Dec, Enc, Frame};
use tfsim::{NodeId, SegKey};

/// Request frame types.
pub mod tag {
    pub const CREATE: u32 = 1;
    pub const SEAL: u32 = 2;
    pub const GET: u32 = 3;
    pub const RELEASE: u32 = 4;
    pub const DELETE: u32 = 5;
    pub const ABORT: u32 = 6;
    pub const CONTAINS: u32 = 7;
    pub const LIST: u32 = 8;
    pub const STATS: u32 = 9;
    pub const EVICT: u32 = 10;
    pub const SUBSCRIBE: u32 = 11;
    pub const DELETE_DEFERRED: u32 = 12;

    pub const R_LOCATION: u32 = 101;
    pub const R_LOCATIONS: u32 = 102;
    pub const R_BOOL: u32 = 103;
    pub const R_UNIT: u32 = 104;
    pub const R_LIST: u32 = 105;
    pub const R_STATS: u32 = 106;
    pub const R_U64: u32 = 107;
    pub const R_ERROR: u32 = 108;
    pub const R_NOTIFY: u32 = 109;
}

/// A request from client to store.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Create {
        id: ObjectId,
        data_size: u64,
        metadata_size: u64,
    },
    Seal(ObjectId),
    Get {
        ids: Vec<ObjectId>,
        timeout_ms: u64,
    },
    Release(ObjectId),
    Delete(ObjectId),
    DeleteDeferred(ObjectId),
    Abort(ObjectId),
    Contains(ObjectId),
    List,
    Stats,
    Evict(u64),
    Subscribe,
}

/// A response from store to client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    Location(ObjectLocation),
    Locations(Vec<Option<ObjectLocation>>),
    Bool(bool),
    Unit,
    List(Vec<ObjectInfo>),
    Stats(StoreStats),
    U64(u64),
    Error(PlasmaError),
    /// Pushed on subscription connections when an object is sealed.
    Notify(ObjectLocation),
}

fn put_id(e: &mut Enc, id: &ObjectId) {
    e.fixed(id.as_bytes());
}

fn get_id(d: &mut Dec) -> Result<ObjectId, CodecError> {
    Ok(ObjectId::from_bytes(d.fixed::<OBJECT_ID_LEN>()?))
}

fn put_location(e: &mut Enc, loc: &ObjectLocation) {
    put_id(e, &loc.id);
    e.u32(u32::from(loc.seg.owner.0))
        .u32(loc.seg.index)
        .u64(loc.offset)
        .u64(loc.data_size)
        .u64(loc.metadata_size);
}

fn get_location(d: &mut Dec) -> Result<ObjectLocation, CodecError> {
    let id = get_id(d)?;
    let owner = d.u32()?;
    let index = d.u32()?;
    Ok(ObjectLocation {
        id,
        seg: SegKey {
            owner: NodeId(u16::try_from(owner).map_err(|_| CodecError::Invalid("node id"))?),
            index,
        },
        offset: d.u64()?,
        data_size: d.u64()?,
        metadata_size: d.u64()?,
    })
}

impl Request {
    pub fn to_frame(&self) -> Frame {
        let mut e = Enc::new();
        let t = match self {
            Request::Create {
                id,
                data_size,
                metadata_size,
            } => {
                put_id(&mut e, id);
                e.u64(*data_size).u64(*metadata_size);
                tag::CREATE
            }
            Request::Seal(id) => {
                put_id(&mut e, id);
                tag::SEAL
            }
            Request::Get { ids, timeout_ms } => {
                e.u64(*timeout_ms).u64(ids.len() as u64);
                for id in ids {
                    put_id(&mut e, id);
                }
                tag::GET
            }
            Request::Release(id) => {
                put_id(&mut e, id);
                tag::RELEASE
            }
            Request::Delete(id) => {
                put_id(&mut e, id);
                tag::DELETE
            }
            Request::DeleteDeferred(id) => {
                put_id(&mut e, id);
                tag::DELETE_DEFERRED
            }
            Request::Abort(id) => {
                put_id(&mut e, id);
                tag::ABORT
            }
            Request::Contains(id) => {
                put_id(&mut e, id);
                tag::CONTAINS
            }
            Request::List => tag::LIST,
            Request::Stats => tag::STATS,
            Request::Evict(bytes) => {
                e.u64(*bytes);
                tag::EVICT
            }
            Request::Subscribe => tag::SUBSCRIBE,
        };
        Frame::new(t, e.finish())
    }

    pub fn from_frame(frame: &Frame) -> Result<Request, PlasmaError> {
        let mut d = Dec::new(frame.payload.clone());
        let req = match frame.msg_type {
            tag::CREATE => Request::Create {
                id: get_id(&mut d)?,
                data_size: d.u64()?,
                metadata_size: d.u64()?,
            },
            tag::SEAL => Request::Seal(get_id(&mut d)?),
            tag::GET => {
                let timeout_ms = d.u64()?;
                let n = d.u64()?;
                let n =
                    usize::try_from(n).map_err(|_| PlasmaError::Protocol("get count".into()))?;
                if n > 1_000_000 {
                    return Err(PlasmaError::Protocol("get batch too large".into()));
                }
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(get_id(&mut d)?);
                }
                Request::Get { ids, timeout_ms }
            }
            tag::RELEASE => Request::Release(get_id(&mut d)?),
            tag::DELETE => Request::Delete(get_id(&mut d)?),
            tag::DELETE_DEFERRED => Request::DeleteDeferred(get_id(&mut d)?),
            tag::ABORT => Request::Abort(get_id(&mut d)?),
            tag::CONTAINS => Request::Contains(get_id(&mut d)?),
            tag::LIST => Request::List,
            tag::STATS => Request::Stats,
            tag::EVICT => Request::Evict(d.u64()?),
            tag::SUBSCRIBE => Request::Subscribe,
            other => {
                return Err(PlasmaError::Protocol(format!(
                    "unknown request tag {other}"
                )))
            }
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    pub fn to_frame(&self) -> Frame {
        let mut e = Enc::new();
        let t = match self {
            Response::Location(loc) => {
                put_location(&mut e, loc);
                tag::R_LOCATION
            }
            Response::Locations(locs) => {
                e.u64(locs.len() as u64);
                for loc in locs {
                    match loc {
                        Some(l) => {
                            e.bool(true);
                            put_location(&mut e, l);
                        }
                        None => {
                            e.bool(false);
                        }
                    }
                }
                tag::R_LOCATIONS
            }
            Response::Bool(b) => {
                e.bool(*b);
                tag::R_BOOL
            }
            Response::Unit => tag::R_UNIT,
            Response::List(infos) => {
                e.u64(infos.len() as u64);
                for i in infos {
                    put_id(&mut e, &i.id);
                    e.u64(i.data_size)
                        .u64(i.metadata_size)
                        .bool(i.state == ObjectState::Sealed)
                        .u64(i.ref_count);
                }
                tag::R_LIST
            }
            Response::Stats(s) => {
                e.u64(s.capacity)
                    .u64(s.segments)
                    .u64(s.allocated_bytes)
                    .u64(s.objects)
                    .u64(s.sealed_objects)
                    .u64(s.creates)
                    .u64(s.seals)
                    .u64(s.gets)
                    .u64(s.get_misses)
                    .u64(s.releases)
                    .u64(s.deletes)
                    .u64(s.evictions)
                    .u64(s.evicted_bytes);
                tag::R_STATS
            }
            Response::U64(v) => {
                e.u64(*v);
                tag::R_U64
            }
            Response::Error(err) => {
                e.u32(err.to_code());
                let id = match err {
                    PlasmaError::ObjectExists(id)
                    | PlasmaError::ObjectNotFound(id)
                    | PlasmaError::NotSealed(id)
                    | PlasmaError::AlreadySealed(id)
                    | PlasmaError::ObjectInUse(id)
                    | PlasmaError::NotReferenced(id) => *id,
                    _ => ObjectId::from_bytes([0; OBJECT_ID_LEN]),
                };
                put_id(&mut e, &id);
                let (a, b) = match err {
                    PlasmaError::OutOfMemory {
                        requested,
                        capacity,
                    } => (*requested, *capacity),
                    PlasmaError::Overloaded { retry_after_ms } => (*retry_after_ms, 0),
                    _ => (0, 0),
                };
                e.u64(a).u64(b);
                let detail = match err {
                    PlasmaError::Fabric(m)
                    | PlasmaError::Transport(m)
                    | PlasmaError::Protocol(m)
                    | PlasmaError::PeerUnavailable(m) => m.as_str(),
                    _ => "",
                };
                e.str(detail);
                tag::R_ERROR
            }
            Response::Notify(loc) => {
                put_location(&mut e, loc);
                tag::R_NOTIFY
            }
        };
        Frame::new(t, e.finish())
    }

    pub fn from_frame(frame: &Frame) -> Result<Response, PlasmaError> {
        let mut d = Dec::new(frame.payload.clone());
        let resp = match frame.msg_type {
            tag::R_LOCATION => Response::Location(get_location(&mut d)?),
            tag::R_LOCATIONS => {
                let n = usize::try_from(d.u64()?)
                    .map_err(|_| PlasmaError::Protocol("locations count".into()))?;
                let mut locs = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    if d.bool()? {
                        locs.push(Some(get_location(&mut d)?));
                    } else {
                        locs.push(None);
                    }
                }
                Response::Locations(locs)
            }
            tag::R_BOOL => Response::Bool(d.bool()?),
            tag::R_UNIT => Response::Unit,
            tag::R_LIST => {
                let n = usize::try_from(d.u64()?)
                    .map_err(|_| PlasmaError::Protocol("list count".into()))?;
                let mut infos = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let id = get_id(&mut d)?;
                    let data_size = d.u64()?;
                    let metadata_size = d.u64()?;
                    let sealed = d.bool()?;
                    let ref_count = d.u64()?;
                    infos.push(ObjectInfo {
                        id,
                        data_size,
                        metadata_size,
                        state: if sealed {
                            ObjectState::Sealed
                        } else {
                            ObjectState::Created
                        },
                        ref_count,
                    });
                }
                Response::List(infos)
            }
            tag::R_STATS => Response::Stats(StoreStats {
                capacity: d.u64()?,
                segments: d.u64()?,
                allocated_bytes: d.u64()?,
                objects: d.u64()?,
                sealed_objects: d.u64()?,
                creates: d.u64()?,
                seals: d.u64()?,
                gets: d.u64()?,
                get_misses: d.u64()?,
                releases: d.u64()?,
                deletes: d.u64()?,
                evictions: d.u64()?,
                evicted_bytes: d.u64()?,
            }),
            tag::R_U64 => Response::U64(d.u64()?),
            tag::R_ERROR => {
                let code = d.u32()?;
                let id = get_id(&mut d)?;
                let a = d.u64()?;
                let b = d.u64()?;
                let detail = d.str()?;
                Response::Error(PlasmaError::from_code(code, id, &detail, a, b))
            }
            tag::R_NOTIFY => Response::Notify(get_location(&mut d)?),
            other => {
                return Err(PlasmaError::Protocol(format!(
                    "unknown response tag {other}"
                )))
            }
        };
        d.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(n: u8) -> ObjectLocation {
        ObjectLocation {
            id: ObjectId::from_bytes([n; 20]),
            seg: SegKey {
                owner: NodeId(3),
                index: 1,
            },
            offset: 4096,
            data_size: 1000,
            metadata_size: 24,
        }
    }

    #[test]
    fn request_roundtrips() {
        let id = ObjectId::from_name("x");
        let cases = vec![
            Request::Create {
                id,
                data_size: 5,
                metadata_size: 2,
            },
            Request::Seal(id),
            Request::Get {
                ids: vec![id, ObjectId::from_name("y")],
                timeout_ms: 1500,
            },
            Request::Get {
                ids: vec![],
                timeout_ms: 0,
            },
            Request::Release(id),
            Request::Delete(id),
            Request::DeleteDeferred(id),
            Request::Abort(id),
            Request::Contains(id),
            Request::List,
            Request::Stats,
            Request::Evict(1 << 20),
            Request::Subscribe,
        ];
        for req in cases {
            let back = Request::from_frame(&req.to_frame()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_roundtrips() {
        let cases = vec![
            Response::Location(loc(1)),
            Response::Locations(vec![Some(loc(1)), None, Some(loc(2))]),
            Response::Locations(vec![]),
            Response::Bool(true),
            Response::Unit,
            Response::List(vec![ObjectInfo {
                id: ObjectId::from_name("z"),
                data_size: 9,
                metadata_size: 1,
                state: ObjectState::Sealed,
                ref_count: 2,
            }]),
            Response::Stats(StoreStats {
                capacity: 100,
                segments: 1,
                allocated_bytes: 50,
                objects: 2,
                sealed_objects: 1,
                creates: 2,
                seals: 1,
                gets: 3,
                get_misses: 1,
                releases: 1,
                deletes: 0,
                evictions: 4,
                evicted_bytes: 99,
            }),
            Response::U64(77),
            Response::Error(PlasmaError::ObjectNotFound(ObjectId::from_name("q"))),
            Response::Error(PlasmaError::OutOfMemory {
                requested: 10,
                capacity: 5,
            }),
            Response::Error(PlasmaError::Protocol("oops".into())),
            Response::Error(PlasmaError::PeerUnavailable("peer store-2 is down".into())),
            Response::Notify(loc(7)),
        ];
        for resp in cases {
            let back = Response::from_frame(&resp.to_frame()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut f = Request::Seal(ObjectId::from_name("x")).to_frame();
        let mut payload = f.payload.to_vec();
        payload.push(0xFF);
        f.payload = payload.into();
        assert!(Request::from_frame(&f).is_err());
    }

    #[test]
    fn unknown_tags_rejected() {
        let f = Frame::new(9999, bytes::Bytes::new());
        assert!(Request::from_frame(&f).is_err());
        assert!(Response::from_frame(&f).is_err());
    }
}
