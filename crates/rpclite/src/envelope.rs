//! RPC envelope: how requests and responses ride inside [`ipc::Frame`]s.
//!
//! Encoded with the protobuf-style wire format from [`crate::wire`],
//! mirroring a gRPC unary exchange stripped to its essentials.
//!
//! ## Integrity
//!
//! The frame payload is `crc32(E)` (4 bytes, little-endian) followed by
//! the encoded envelope `E`. The checksum is verified before decoding, so
//! bytes corrupted in transit surface as [`WireError::Checksum`] — a
//! protocol error that poisons the connection — rather than decoding into
//! a plausible envelope and, worst of all, completing the wrong pending
//! `call_id` on a pipelined client. CRC-32 detects all single- and
//! double-bit errors at envelope sizes, which is exactly the corruption
//! class a flaky wire (or a chaos harness) injects.

use crate::service::{Status, StatusCode};
use crate::wire::{crc32, MsgDec, MsgEnc, WireError};
use bytes::{Buf, Bytes};
use ipc::Frame;

/// Wrap an encoded envelope in a checksummed frame payload.
fn seal_frame(msg_type: u32, envelope: Bytes) -> Frame {
    let mut payload = Vec::with_capacity(4 + envelope.len());
    payload.extend_from_slice(&crc32(&envelope).to_le_bytes());
    payload.extend_from_slice(&envelope);
    Frame::new(msg_type, payload)
}

/// Verify and strip the checksum prefix, returning the envelope bytes.
fn open_frame(frame: &Frame) -> Result<Bytes, WireError> {
    if frame.payload.len() < 4 {
        return Err(WireError::Truncated);
    }
    let mut payload = frame.payload.clone();
    let stated = payload.get_u32_le();
    if crc32(&payload) != stated {
        return Err(WireError::Checksum);
    }
    Ok(payload)
}

/// Frame type tag marking a request envelope ("RQ").
pub const FRAME_REQUEST: u32 = 0x5251;
/// Frame type tag marking a response envelope ("RP").
pub const FRAME_RESPONSE: u32 = 0x5250;

/// A unary request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Correlation id: echoed back verbatim in the matching [`Response`],
    /// letting a pipelined client demultiplex out-of-order completions.
    pub call_id: u64,
    /// Method id dispatched by the service.
    pub method: u32,
    /// Opaque request payload.
    pub body: Bytes,
}

impl Request {
    /// Encode into a [`FRAME_REQUEST`] frame.
    pub fn to_frame(&self) -> Frame {
        let mut e = MsgEnc::new();
        e.uint(1, self.call_id)
            .uint(2, u64::from(self.method))
            .bytes(3, &self.body);
        seal_frame(FRAME_REQUEST, e.finish())
    }

    /// Decode from a frame's payload, verifying its integrity checksum.
    pub fn from_frame(frame: &Frame) -> Result<Request, WireError> {
        let fields = MsgDec::new(open_frame(frame)?).collect()?;
        Ok(Request {
            call_id: fields.uint(1)?,
            method: u32::try_from(fields.uint(2)?).map_err(|_| WireError::MissingField(2))?,
            body: fields.bytes(3).unwrap_or_default(),
        })
    }
}

/// A unary response: either a body (Ok) or a status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Correlation id of the [`Request`] this response answers.
    pub call_id: u64,
    /// Response body on success, error status otherwise.
    pub result: Result<Bytes, Status>,
}

impl Response {
    /// Encode into a [`FRAME_RESPONSE`] frame.
    pub fn to_frame(&self) -> Frame {
        let mut e = MsgEnc::new();
        e.uint(1, self.call_id);
        match &self.result {
            Ok(body) => {
                e.uint(2, StatusCode::Ok as u64);
                e.bytes(4, body);
            }
            Err(status) => {
                e.uint(2, status.code as u64);
                e.string(3, &status.message);
            }
        }
        seal_frame(FRAME_RESPONSE, e.finish())
    }

    /// Decode from a frame's payload, verifying its integrity checksum.
    pub fn from_frame(frame: &Frame) -> Result<Response, WireError> {
        let fields = MsgDec::new(open_frame(frame)?).collect()?;
        let call_id = fields.uint(1)?;
        let code = StatusCode::from_u32(
            u32::try_from(fields.uint(2)?).map_err(|_| WireError::MissingField(2))?,
        );
        let result = if code == StatusCode::Ok {
            Ok(fields.bytes(4).unwrap_or_default())
        } else {
            Err(Status::new(code, fields.string(3).unwrap_or_default()))
        };
        Ok(Response { call_id, result })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = Request {
            call_id: 77,
            method: 3,
            body: Bytes::from_static(b"payload"),
        };
        let back = Request::from_frame(&r.to_frame()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn ok_response_roundtrip() {
        let r = Response {
            call_id: 9,
            result: Ok(Bytes::from_static(b"result")),
        };
        assert_eq!(Response::from_frame(&r.to_frame()).unwrap(), r);
    }

    #[test]
    fn error_response_roundtrip() {
        let r = Response {
            call_id: 9,
            result: Err(Status::not_found("no such object")),
        };
        assert_eq!(Response::from_frame(&r.to_frame()).unwrap(), r);
    }

    #[test]
    fn empty_body_roundtrip() {
        let r = Request {
            call_id: 0,
            method: 0,
            body: Bytes::new(),
        };
        assert_eq!(Request::from_frame(&r.to_frame()).unwrap(), r);
    }

    #[test]
    fn garbage_payload_is_rejected() {
        let f = Frame::new(FRAME_REQUEST, Bytes::from_static(&[0xFF; 3]));
        assert!(Request::from_frame(&f).is_err());
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let frame = Response {
            call_id: 0xDEAD_BEEF,
            result: Ok(Bytes::from_static(b"payload under test")),
        }
        .to_frame();
        for byte in 0..frame.payload.len() {
            for bit in 0..8 {
                let mut corrupted = frame.payload.to_vec();
                corrupted[byte] ^= 1 << bit;
                let f = Frame::new(frame.msg_type, corrupted);
                assert!(
                    Response::from_frame(&f).is_err(),
                    "flip at {byte}:{bit} decoded"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let frame = Request {
            call_id: 42,
            method: 9,
            body: Bytes::from_static(b"truncate me"),
        }
        .to_frame();
        for keep in 0..frame.payload.len() {
            let f = Frame::new(
                frame.msg_type,
                Bytes::copy_from_slice(&frame.payload[..keep]),
            );
            assert!(Request::from_frame(&f).is_err(), "kept {keep} decoded");
        }
    }

    #[test]
    fn corruption_reports_checksum_error() {
        let frame = Request {
            call_id: 7,
            method: 1,
            body: Bytes::from_static(b"x"),
        }
        .to_frame();
        let mut corrupted = frame.payload.to_vec();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0x10;
        let f = Frame::new(frame.msg_type, corrupted);
        assert_eq!(Request::from_frame(&f).unwrap_err(), WireError::Checksum);
    }
}
