//! Criterion bench for Fig. 6 — buffer retrieval latency, local vs remote.
//!
//! Runs the paper's 2-node configuration with a *throttled* clock, so the
//! modeled IPC/RPC costs appear in wall-clock time and Criterion reports
//! the same shape as the paper: µs-scale local retrievals that grow with
//! object count vs ms-scale, jittery remote retrievals.

use bench::{commit_objects, BenchSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use disagg::{Cluster, ClusterConfig};
use plasma::{ObjectId, PlasmaClient};
use std::time::Duration;
use tfsim::ClockMode;

fn throttled_cluster() -> Cluster {
    let mut cfg = ClusterConfig::paper_testbed(256 << 20);
    cfg.clock_mode = ClockMode::Throttle;
    Cluster::launch(cfg).expect("launch cluster")
}

fn get_and_release(client: &PlasmaClient, ids: &[ObjectId]) {
    let bufs = client.get(ids, Duration::from_secs(60)).expect("get");
    for b in bufs.iter().flatten() {
        client.release(b.id).expect("release");
    }
}

fn bench_retrieval(c: &mut Criterion) {
    let cluster = throttled_cluster();
    let producer = cluster.client(0).expect("producer");
    let local = cluster.client(0).expect("local client");
    let remote = cluster.client(1).expect("remote client");

    let mut group = c.benchmark_group("retrieval");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    // Object data size is irrelevant for retrieval (locations, not data),
    // so use 1 kB objects at the paper's object counts.
    for &count in &[10usize, 100, 1000] {
        let spec = BenchSpec {
            index: count, // namespaces the ids
            num_objects: count,
            object_size: 1000,
        };
        let ids = commit_objects(&producer, &spec, "crit", 7).expect("commit");

        group.bench_with_input(BenchmarkId::new("local", count), &ids, |b, ids| {
            b.iter(|| get_and_release(&local, ids));
        });
        group.bench_with_input(BenchmarkId::new("remote", count), &ids, |b, ids| {
            b.iter(|| get_and_release(&remote, ids));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_retrieval);
criterion_main!(benches);
