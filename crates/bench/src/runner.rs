//! The paper's microbenchmark procedure (§IV-B), reusable by the figure
//! harness binaries and the Criterion benches.
//!
//! For each benchmark of Table I: commit the objects to store 0, then have
//! a *local* client (node 0, store 0) and a *remote* client (node 1,
//! store 1) repeatedly (a) request all object buffers from **their own**
//! store — measuring retrieval latency "from the time of the request to
//! the reception of the last buffer" — and (b) read the received buffers
//! sequentially — measuring throughput including access latency.

use crate::measure::gibps;
use crate::workload::{commit_ids, BenchSpec};
use disagg::Cluster;
use plasma::{ObjectId, PlasmaClient, PlasmaError};
use std::time::Duration;

/// Chunk size for sequential buffer reads (1 MiB; objects smaller than
/// this are read in a single access, so per-op latency shows up for the
/// small-object benchmarks exactly as in the paper's Fig. 7).
pub const READ_CHUNK: usize = 1 << 20;

/// One repetition's measurements for one client placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepSample {
    /// Request → last buffer received.
    pub retrieval: Duration,
    /// Sequential read throughput over all buffers, GiB/s.
    pub read_gibps: f64,
}

/// All repetitions of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub spec: BenchSpec,
    /// Time to create + write + seal all objects (measured once).
    pub commit: Duration,
    pub local: Vec<RepSample>,
    pub remote: Vec<RepSample>,
}

/// Run `get` + sequential read once, returning the sample. Buffers are
/// released outside the timed sections.
pub fn one_rep(
    cluster: &Cluster,
    client: &PlasmaClient,
    ids: &[ObjectId],
    total_bytes: u64,
) -> Result<RepSample, PlasmaError> {
    let clock = cluster.clock();

    let (bufs, retrieval) = clock.time(|| client.get(ids, Duration::from_secs(600)));
    let bufs = bufs?;
    let missing = bufs.iter().filter(|b| b.is_none()).count();
    if missing > 0 {
        return Err(PlasmaError::Timeout);
    }

    let (read_result, read_elapsed) = clock.time(|| -> Result<(), PlasmaError> {
        for buf in bufs.iter().flatten() {
            buf.data().read_sequential(READ_CHUNK)?;
        }
        Ok(())
    });
    read_result?;

    for buf in bufs.iter().flatten() {
        client.release(buf.id)?;
    }

    Ok(RepSample {
        retrieval,
        read_gibps: gibps(total_bytes, read_elapsed),
    })
}

/// Run one Table I benchmark between a chosen pair of nodes: objects are
/// pinned to `local_node`'s store; the "local" client runs there and the
/// "remote" client on `remote_node`. On a topology-built cluster the
/// pair selects the tier under test (e.g. `spec.farthest_from(0)` for
/// the worst link); on the paper testbed, `(0, 1)` reproduces §IV-B.
pub fn run_benchmark_between(
    cluster: &Cluster,
    spec: &BenchSpec,
    reps: usize,
    seed: u64,
    local_node: usize,
    remote_node: usize,
) -> Result<BenchResult, PlasmaError> {
    assert!(
        local_node != remote_node && local_node < cluster.len() && remote_node < cluster.len(),
        "benchmark needs two distinct nodes"
    );
    let producer = cluster.client(local_node)?;
    let local = cluster.client(local_node)?;
    let remote = cluster.client(remote_node)?;

    let tag = format!("run{seed}");
    // The ring would scatter plain ids across the cluster; pin every
    // object to the local node so "local" and "remote" keep the paper's
    // meaning.
    let ids: Vec<ObjectId> = (0..spec.num_objects)
        .map(|i| {
            let base = format!("bench{}-{}-{}", spec.index, tag, i);
            ObjectId::from_name(&cluster.owned_id(local_node, &base))
        })
        .collect();
    let (committed, commit) = cluster
        .clock()
        .time(|| commit_ids(&producer, &ids, spec.object_size, seed));
    committed?;
    let total = spec.total_bytes();

    let mut result = BenchResult {
        spec: *spec,
        commit,
        local: Vec::with_capacity(reps),
        remote: Vec::with_capacity(reps),
    };
    for _ in 0..reps {
        result.local.push(one_rep(cluster, &local, &ids, total)?);
        result.remote.push(one_rep(cluster, &remote, &ids, total)?);
    }

    // Clean up so successive benchmarks don't accumulate memory.
    for id in &ids {
        producer.delete(*id)?;
    }
    Ok(result)
}

/// Run one Table I benchmark with the paper's placement: objects on
/// store 0, remote client on node 1 (see [`run_benchmark_between`]).
pub fn run_benchmark(
    cluster: &Cluster,
    spec: &BenchSpec,
    reps: usize,
    seed: u64,
) -> Result<BenchResult, PlasmaError> {
    run_benchmark_between(cluster, spec, reps, seed, 0, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::TABLE_I_SMALL;
    use disagg::ClusterConfig;

    #[test]
    fn benchmark_runs_and_shapes_hold() {
        // Paper-calibrated 2-node cluster, scaled-down workload.
        let cluster = Cluster::launch(ClusterConfig::paper_testbed(64 << 20)).unwrap();
        let spec = TABLE_I_SMALL[3]; // 100 x 10 kB
        let r = run_benchmark(&cluster, &spec, 3, 42).unwrap();
        assert_eq!(r.local.len(), 3);
        assert_eq!(r.remote.len(), 3);
        // Remote retrieval is RPC-dominated (ms); local is µs-scale.
        for (l, m) in r.local.iter().zip(&r.remote) {
            assert!(
                m.retrieval > l.retrieval,
                "remote {:?} should exceed local {:?}",
                m.retrieval,
                l.retrieval
            );
            assert!(m.retrieval > Duration::from_millis(1));
            assert!(l.retrieval < Duration::from_millis(2));
            // Both read throughputs are positive and local >= remote.
            assert!(l.read_gibps > m.read_gibps);
        }
        // The store is clean afterwards.
        assert_eq!(cluster.store(0).core().stats().objects, 0);
    }

    #[test]
    fn one_rep_errors_on_missing_objects() {
        let cluster = Cluster::launch(ClusterConfig::functional(2, 1 << 20)).unwrap();
        let client = cluster.client(0).unwrap();
        let ghost = [plasma::ObjectId::from_name("ghost")];
        // Use a tiny timeout by requesting through `one_rep`'s get with a
        // non-existent id; it waits, then errors with Timeout.
        // (Shrink the wait by using get directly for the miss check.)
        let out = client.get(&ghost, Duration::from_millis(30)).unwrap();
        assert!(out[0].is_none());
    }
}
