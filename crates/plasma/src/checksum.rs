//! Checksummed test payloads.
//!
//! The chaos harness needs to prove that every byte a `get` returns is
//! exactly some payload a `put` previously sealed — never a torn,
//! corrupted or stale mixture. This module gives it the tools: a
//! deterministic fill derived from a 64-bit tag, and an FNV-1a digest to
//! recognize which sealed payload (if any) a returned buffer matches.
//!
//! Payloads carry their tag in the first eight bytes, so a reader can
//! name the exact version it observed; the rest of the buffer is a
//! tag-seeded xorshift stream, so two payloads with different tags
//! differ in essentially every byte — a splice of two versions can
//! match neither digest.

/// Minimum length of a [`fill`] payload: the embedded 8-byte tag.
pub const MIN_FILL_LEN: usize = 8;

/// FNV-1a 64-bit digest of `data`.
///
/// Not error-correcting and not cryptographic — just a cheap, stable
/// fingerprint with good avalanche behavior, used to compare observed
/// buffers against the set of sealed payloads.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Deterministic payload of `len` bytes (at least [`MIN_FILL_LEN`]) for
/// `tag`: the tag in little-endian, then a tag-seeded xorshift byte
/// stream. Same tag + same length ⇒ identical bytes.
pub fn fill(tag: u64, len: usize) -> Vec<u8> {
    let len = len.max(MIN_FILL_LEN);
    let mut out = Vec::with_capacity(len);
    out.extend_from_slice(&tag.to_le_bytes());
    // Golden-ratio mix so near-equal tags (e.g. 42 vs 43) seed far-apart
    // streams; `| 1` keeps xorshift64 away from the zero fixed point.
    let mut state = tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        out.push((state >> 24) as u8);
    }
    out
}

/// The tag embedded in a [`fill`] payload, or `None` if the buffer is
/// too short to carry one.
pub fn embedded_tag(data: &[u8]) -> Option<u64> {
    let head: [u8; 8] = data.get(..8)?.try_into().ok()?;
    Some(u64::from_le_bytes(head))
}

/// Check that `data` is exactly `fill(tag, data.len())`.
pub fn verify(tag: u64, data: &[u8]) -> bool {
    data.len() >= MIN_FILL_LEN && fill(tag, data.len()) == data
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_is_deterministic_and_tag_sensitive() {
        let a = fill(42, 256);
        assert_eq!(a, fill(42, 256));
        let b = fill(43, 256);
        assert_ne!(a, b);
        // Different tags differ in many positions, not just the header.
        let differing = a.iter().zip(&b).filter(|(x, y)| x != y).count();
        assert!(differing > 200, "only {differing} bytes differ");
    }

    #[test]
    fn tag_roundtrips_and_verifies() {
        for tag in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            for len in [0usize, 8, 9, 1024] {
                let payload = fill(tag, len);
                assert!(payload.len() >= MIN_FILL_LEN);
                assert_eq!(embedded_tag(&payload), Some(tag));
                assert!(verify(tag, &payload));
            }
        }
        assert_eq!(embedded_tag(b"short"), None);
    }

    #[test]
    fn verify_rejects_any_corruption() {
        let payload = fill(7, 64);
        for i in 0..payload.len() {
            let mut bad = payload.clone();
            bad[i] ^= 0x01;
            assert!(!verify(7, &bad), "flip at {i} accepted");
        }
        // A splice of two versions fails both.
        let other = fill(8, 64);
        let mut splice = payload.clone();
        splice[32..].copy_from_slice(&other[32..]);
        assert!(!verify(7, &splice));
        assert!(!verify(8, &splice));
    }

    #[test]
    fn fnv_digest_known_values() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }

    #[test]
    fn digests_of_distinct_fills_are_distinct() {
        use std::collections::HashSet;
        let digests: HashSet<u64> = (0..512).map(|tag| fnv1a64(&fill(tag, 32))).collect();
        assert_eq!(digests.len(), 512);
    }
}
