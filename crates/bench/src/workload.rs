//! Benchmark workloads.
//!
//! Table I of the paper defines six microbenchmarks varying object size by
//! orders of magnitude while scaling the object count down, "to mitigate
//! any potential influence of caching of smaller objects". This module
//! encodes those specs and the routines that commit and consume the
//! corresponding objects.

use plasma::{ObjectId, PlasmaClient, PlasmaError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One row of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchSpec {
    /// Benchmark number (1-6).
    pub index: usize,
    /// Number of objects committed and retrieved.
    pub num_objects: usize,
    /// Size of each object in bytes (decimal kB as in the paper).
    pub object_size: usize,
}

impl BenchSpec {
    /// Total bytes across all objects.
    pub fn total_bytes(&self) -> u64 {
        self.num_objects as u64 * self.object_size as u64
    }

    /// Deterministic ids for this benchmark's objects, namespaced by `tag`
    /// so repeated runs / stores don't collide.
    pub fn ids(&self, tag: &str) -> Vec<ObjectId> {
        (0..self.num_objects)
            .map(|i| ObjectId::from_name(&format!("bench{}-{}-{}", self.index, tag, i)))
            .collect()
    }
}

/// The paper's Table I: (1000, 1 kB), (500, 10 kB), (200, 100 kB),
/// (100, 1 MB), (50, 10 MB), (10, 100 MB).
pub const TABLE_I: [BenchSpec; 6] = [
    BenchSpec {
        index: 1,
        num_objects: 1000,
        object_size: 1_000,
    },
    BenchSpec {
        index: 2,
        num_objects: 500,
        object_size: 10_000,
    },
    BenchSpec {
        index: 3,
        num_objects: 200,
        object_size: 100_000,
    },
    BenchSpec {
        index: 4,
        num_objects: 100,
        object_size: 1_000_000,
    },
    BenchSpec {
        index: 5,
        num_objects: 50,
        object_size: 10_000_000,
    },
    BenchSpec {
        index: 6,
        num_objects: 10,
        object_size: 100_000_000,
    },
];

/// A scaled-down Table I (sizes ÷ 100) for quick smoke runs and tests.
pub const TABLE_I_SMALL: [BenchSpec; 6] = [
    BenchSpec {
        index: 1,
        num_objects: 1000,
        object_size: 10,
    },
    BenchSpec {
        index: 2,
        num_objects: 500,
        object_size: 100,
    },
    BenchSpec {
        index: 3,
        num_objects: 200,
        object_size: 1_000,
    },
    BenchSpec {
        index: 4,
        num_objects: 100,
        object_size: 10_000,
    },
    BenchSpec {
        index: 5,
        num_objects: 50,
        object_size: 100_000,
    },
    BenchSpec {
        index: 6,
        num_objects: 10,
        object_size: 1_000_000,
    },
];

/// Generate `len` bytes of random data ("objects with random data"; the
/// contents "should not influence the system performance").
pub fn random_data(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut v = vec![0u8; len];
    rng.fill(&mut v[..]);
    v
}

/// Commit all of a benchmark's objects through `client` (create + write +
/// seal), reusing one random payload across objects to bound generation
/// cost. Returns the ids.
pub fn commit_objects(
    client: &PlasmaClient,
    spec: &BenchSpec,
    tag: &str,
    seed: u64,
) -> Result<Vec<ObjectId>, PlasmaError> {
    let ids = spec.ids(tag);
    commit_ids(client, &ids, spec.object_size, seed)?;
    Ok(ids)
}

/// Commit an explicit id list (create + write + seal each), for callers
/// that pick placement-aware ids instead of the default naming scheme.
pub fn commit_ids(
    client: &PlasmaClient,
    ids: &[ObjectId],
    object_size: usize,
    seed: u64,
) -> Result<(), PlasmaError> {
    let payload = random_data(object_size, seed);
    for id in ids {
        client.put(*id, &payload, &[])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_matches_paper() {
        assert_eq!(TABLE_I.len(), 6);
        assert_eq!(TABLE_I[0].num_objects, 1000);
        assert_eq!(TABLE_I[0].object_size, 1_000);
        assert_eq!(TABLE_I[5].num_objects, 10);
        assert_eq!(TABLE_I[5].object_size, 100_000_000);
        // Total volume per benchmark is 1 MB, 5 MB, 20 MB, 100 MB, 500 MB, 1 GB.
        let totals: Vec<u64> = TABLE_I.iter().map(BenchSpec::total_bytes).collect();
        assert_eq!(
            totals,
            vec![
                1_000_000,
                5_000_000,
                20_000_000,
                100_000_000,
                500_000_000,
                1_000_000_000
            ]
        );
    }

    #[test]
    fn ids_are_distinct_per_tag_and_index() {
        let a = TABLE_I[0].ids("x");
        let b = TABLE_I[0].ids("y");
        assert_eq!(a.len(), 1000);
        assert!(a.iter().zip(&b).all(|(x, y)| x != y));
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn random_data_is_seed_deterministic() {
        assert_eq!(random_data(64, 7), random_data(64, 7));
        assert_ne!(random_data(64, 7), random_data(64, 8));
    }
}
