//! Topology-driven cluster construction and the A6 workload runner.
//!
//! [`cluster_config`] expands a [`topo::ClusterSpec`] into a
//! [`disagg::ClusterConfig`]: same per-pair delay seeding as the uniform
//! mesh, but each channel's [`netsim::LinkModel`] comes from the spec's
//! tier taxonomy (intra-rack / cross-rack / cross-pod). The paper's
//! 2-node testbed is the degenerate 1-rack spec —
//! `cluster_config(&ClusterSpec::paper_testbed(), m)` launches a mesh
//! byte-identical to `ClusterConfig::paper_testbed(m)`, which keeps the
//! recorded A2/A3 figures reproducible while fig6/fig7/table1 route
//! through the topology path.
//!
//! [`run_cluster_workload`] replays a generated [`topo::Schedule`]
//! against the cluster on the virtual clock: catalog objects are pinned
//! to their home nodes via [`disagg::Cluster::owned_id`], each get is
//! issued store-side from the op's client node, and latency lands in a
//! per-tier obs histogram (`cluster.get.<tier>.latency_ns`), so the
//! report can show intra-rack < cross-rack < cross-pod directly.

use disagg::{Cluster, ClusterConfig, DisaggStats};
use obs::{MetricsSnapshot, Registry};
use plasma::{ObjectId, ObjectStore, PlasmaError};
use std::sync::Arc;
use std::time::Duration;
use topo::{ClusterSpec, OpKind, Schedule, Tier, WorkloadSpec};

/// Expand a topology spec into cluster construction parameters: paper
/// interconnect calibration, virtual clock, placement ring — with the
/// node count, delay seed, and per-pair tiered links taken from `spec`.
pub fn cluster_config(spec: &ClusterSpec, memory_per_node: usize) -> ClusterConfig {
    let mut config = ClusterConfig::paper_testbed(memory_per_node);
    config.nodes = spec.nodes();
    config.seed = spec.seed;
    config.link_map = Some(spec.link_map());
    // Benches charge delay on the virtual clock; the wall-clock RPC
    // deadline only measures host scheduling jitter. On a loaded machine
    // a large fabric can stall any one call past the 2 s default, which
    // would spuriously mark healthy peers Down mid-replay.
    config.interconnect.call_deadline = None;
    config
}

/// Per-tier latency digest of one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierStat {
    /// The tier this row summarizes.
    pub tier: Tier,
    /// Gets measured on this tier.
    pub ops: u64,
    /// Median get latency, nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile get latency, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile get latency, nanoseconds.
    pub p99_ns: u64,
}

/// Outcome of replaying one schedule against a cluster.
#[derive(Debug, Clone)]
pub struct ClusterRunReport {
    /// Ops replayed (gets + puts).
    pub ops: u64,
    /// Catalog gets issued.
    pub gets: u64,
    /// Churn puts issued.
    pub puts: u64,
    /// FNV digest of the replayed schedule (equal seeds ⇒ equal digests).
    pub schedule_digest: u64,
    /// Get-latency digest per tier, in `Tier::ALL` order, tiers with no
    /// traffic omitted.
    pub tiers: Vec<TierStat>,
    /// Virtual time consumed by the replay.
    pub virtual_elapsed: Duration,
    /// Cluster-wide placement-ring stats summed over all stores.
    pub ring_hits: u64,
    /// Ring misses that fell back to the lookup broadcast.
    pub ring_fallbacks: u64,
    /// Lookup RPCs issued cluster-wide.
    pub lookup_rpcs: u64,
    /// The runner's own metrics (per-tier get/put histograms).
    pub metrics: MetricsSnapshot,
}

/// Replay `load` (generated against `spec`) on `cluster`.
///
/// The run is deterministic: ops are issued in schedule order on one
/// thread, the virtual clock is advanced to each op's arrival time, and
/// every interconnect delay comes from the per-pair seeded link
/// samplers — so two runs of the same `(spec, load)` produce identical
/// per-tier op counts and latency histograms.
pub fn run_cluster_workload(
    cluster: &Cluster,
    spec: &ClusterSpec,
    load: &WorkloadSpec,
) -> Result<ClusterRunReport, PlasmaError> {
    let schedule = load.generate(spec);
    run_cluster_schedule(cluster, spec, load, &schedule)
}

/// Replay an already-generated schedule (see [`run_cluster_workload`]).
pub fn run_cluster_schedule(
    cluster: &Cluster,
    spec: &ClusterSpec,
    load: &WorkloadSpec,
    schedule: &Schedule,
) -> Result<ClusterRunReport, PlasmaError> {
    assert_eq!(
        cluster.len(),
        spec.nodes(),
        "cluster was not launched from this spec"
    );
    let clock = cluster.clock();
    let registry = Registry::new();
    let started = clock.now();

    // Commit the catalog: every (tenant, home) pool becomes a run of
    // sealed objects pinned to its home node, so a get targeting node v
    // is local iff the issuing client is v, and crosses exactly the
    // client→v link otherwise.
    let mut pools: Vec<Vec<Vec<ObjectId>>> = Vec::with_capacity(load.tenants.len());
    for (t, tenant) in load.tenants.iter().enumerate() {
        let mut homes = Vec::with_capacity(spec.nodes());
        for home in 0..spec.nodes() {
            let names = cluster.owned_ids(home, &format!("wl/{t}/{home}"), tenant.objects_per_node);
            homes.push(names.iter().map(|n| ObjectId::from_name(n)).collect());
        }
        pools.push(homes);
    }
    // The producer reference from create is kept deliberately: a pinned
    // catalog cannot be evicted mid-run, so every scheduled get is
    // servable and the replay stays deterministic.
    for object in load.catalog(spec) {
        let id = pools[object.tenant as usize][object.home as usize][object.index as usize];
        let store = cluster.store(object.home as usize);
        store.create(id, object.bytes, 0)?;
        store.seal(id)?;
    }

    let get_histograms: Vec<Arc<obs::Histogram>> = Tier::ALL
        .iter()
        .map(|t| registry.histogram(&format!("cluster.get.{}.latency_ns", t.label())))
        .collect();
    let put_histograms: Vec<Arc<obs::Histogram>> = Tier::ALL
        .iter()
        .map(|t| registry.histogram(&format!("cluster.put.{}.latency_ns", t.label())))
        .collect();
    let tier_slot = |tier: Tier| Tier::ALL.iter().position(|t| *t == tier).unwrap();
    // Exact get-latency samples per tier: the obs histograms above feed
    // the mergeable snapshot, but their log₂ buckets are too coarse to
    // order adjacent tiers (2.3 ms and 3.1 ms medians share a bucket),
    // so the reported percentiles come from the raw samples.
    let mut samples: Vec<Vec<u64>> = vec![Vec::new(); Tier::ALL.len()];

    let mut gets = 0u64;
    let mut puts = 0u64;
    let timeout = Duration::from_secs(600);
    for op in &schedule.ops {
        clock.advance_to(started + Duration::from_nanos(op.at_ns));
        let client = op.client as usize;
        let store = cluster.store(client);
        match op.kind {
            OpKind::Get => {
                let target = op.target as usize;
                let id = pools[op.tenant as usize][target][op.object as usize];
                let (found, elapsed) = clock.time(|| store.get(&[id], timeout));
                let found = found?;
                if found[0].is_none() {
                    return Err(PlasmaError::Timeout);
                }
                store.release(id)?;
                let slot = tier_slot(spec.tier(client, target));
                get_histograms[slot].record_duration(elapsed);
                samples[slot].push(elapsed.as_nanos() as u64);
                gets += 1;
            }
            OpKind::Put { bytes } => {
                let id = ObjectId::from_name(&format!("wl-churn/{}/{}", op.tenant, op.seq));
                let (created, elapsed) = clock.time(|| -> Result<(), PlasmaError> {
                    store.create(id, bytes, 0)?;
                    store.seal(id)?;
                    Ok(())
                });
                created?;
                // The churn object's placement fell where the ring put
                // it; the charged link was client→owner.
                let owner = store
                    .ring_owner(id)
                    .and_then(|node| (0..cluster.len()).find(|i| cluster.node_id(*i) == node))
                    .unwrap_or(client);
                put_histograms[tier_slot(spec.tier(client, owner))].record_duration(elapsed);
                // Drop the producer reference and delete immediately
                // (untimed) so churn does not accumulate into eviction
                // pressure.
                store.release(id)?;
                store.delete(id)?;
                puts += 1;
            }
        }
    }

    let stats: Vec<DisaggStats> = (0..cluster.len())
        .map(|i| cluster.store(i).disagg_stats())
        .collect();
    let metrics = registry.snapshot();
    let tiers = Tier::ALL
        .iter()
        .zip(&mut samples)
        .filter_map(|(t, lat)| {
            if lat.is_empty() {
                return None;
            }
            lat.sort_unstable();
            let nearest = |q: f64| lat[((lat.len() - 1) as f64 * q).round() as usize];
            Some(TierStat {
                tier: *t,
                ops: lat.len() as u64,
                p50_ns: nearest(0.50),
                p90_ns: nearest(0.90),
                p99_ns: nearest(0.99),
            })
        })
        .collect();

    Ok(ClusterRunReport {
        ops: gets + puts,
        gets,
        puts,
        schedule_digest: schedule.digest(),
        tiers,
        virtual_elapsed: clock.now() - started,
        ring_hits: stats.iter().map(|s| s.ring_hits).sum(),
        ring_fallbacks: stats.iter().map(|s| s.ring_fallbacks).sum(),
        lookup_rpcs: stats.iter().map(|s| s.lookup_rpcs).sum(),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_spec_reproduces_the_recorded_mesh() {
        let spec = ClusterSpec::paper_testbed();
        let config = cluster_config(&spec, 1 << 20);
        let reference = ClusterConfig::paper_testbed(1 << 20);
        assert_eq!(config.nodes, reference.nodes);
        assert_eq!(config.seed, reference.seed);
        // The degenerate 1-rack spec expands every pair to exactly the
        // calibrated uniform link, so the mesh is byte-identical.
        let map = config.link_map.as_ref().unwrap();
        for i in 0..2 {
            for j in 0..2 {
                if i != j {
                    assert_eq!(map(i, j), reference.rpc_link);
                }
            }
        }
    }

    #[test]
    fn small_fabric_run_is_deterministic_and_tiered() {
        let spec = ClusterSpec::small_fabric(11);
        let mut load = WorkloadSpec::default_for(&spec, 600);
        load.classes = topo::workload::table1_classes_small();
        let run = |spec: &ClusterSpec, load: &WorkloadSpec| {
            let cluster = Cluster::launch(cluster_config(spec, 8 << 20)).unwrap();
            run_cluster_workload(&cluster, spec, load).unwrap()
        };
        let a = run(&spec, &load);
        let b = run(&spec, &load);
        assert_eq!(a.ops, 600);
        assert_eq!(a.schedule_digest, b.schedule_digest);
        assert_eq!(a.tiers, b.tiers);
        assert_eq!(
            a.ring_fallbacks, 0,
            "stable membership must never fall back"
        );
        assert!(a.tiers.len() >= 2, "expected traffic on several tiers");
        // Network tiers are ordered nearest-fastest at the median.
        let median = |tier: Tier| a.tiers.iter().find(|t| t.tier == tier).map(|t| t.p50_ns);
        if let (Some(intra), Some(pod)) = (median(Tier::IntraRack), median(Tier::CrossPod)) {
            assert!(intra < pod, "intra-rack {intra} >= cross-pod {pod}");
        }
    }
}
