//! Allocator statistics.

/// Counters and fragmentation indicators reported by every
/// [`crate::RegionAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Region capacity in bytes.
    pub capacity: u64,
    /// Bytes currently allocated (excluding alignment padding returned to
    /// the free map).
    pub allocated_bytes: u64,
    /// Peak of `allocated_bytes` over the allocator's lifetime.
    pub peak_allocated_bytes: u64,
    /// Number of live allocations.
    pub live_allocs: u64,
    /// Successful allocations since creation.
    pub total_allocs: u64,
    /// Frees since creation.
    pub total_frees: u64,
    /// Allocation requests that failed with out-of-memory.
    pub failed_allocs: u64,
    /// Number of maximal free regions (external fragmentation indicator).
    pub free_regions: u64,
    /// Largest free region in bytes.
    pub largest_free: u64,
}

impl AllocStats {
    /// Free bytes (capacity minus allocated).
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.allocated_bytes
    }

    /// External fragmentation in `[0, 1]`: the fraction of free memory that
    /// is *not* in the largest free region. 0 means all free memory is one
    /// contiguous region; values near 1 mean the free space is shattered.
    pub fn external_fragmentation(&self) -> f64 {
        let free = self.free_bytes();
        if free == 0 {
            return 0.0;
        }
        1.0 - (self.largest_free as f64 / free as f64)
    }

    /// Utilization in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        self.allocated_bytes as f64 / self.capacity as f64
    }
}

/// Occupancy of one size class of a segregated allocator (see
/// [`crate::Slab`]). `live_bytes` is requested bytes; `held_bytes` is
/// extent bytes reserved by the class's slabs, so
/// `live_bytes / held_bytes` is the class's fill ratio (internal
/// fragmentation indicator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassOccupancy {
    /// Slot size of the class in bytes.
    pub class_size: u64,
    /// Slab extents currently held by the class.
    pub slabs: u64,
    /// Total slots across those slabs.
    pub total_slots: u64,
    /// Slots currently live.
    pub live_slots: u64,
    /// Requested bytes across live slots.
    pub live_bytes: u64,
    /// Extent bytes reserved by the class (slabs × slab size).
    pub held_bytes: u64,
}

/// Internal helper shared by allocator implementations.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct StatsCore {
    pub allocated_bytes: u64,
    pub peak_allocated_bytes: u64,
    pub live_allocs: u64,
    pub total_allocs: u64,
    pub total_frees: u64,
    pub failed_allocs: u64,
}

impl StatsCore {
    pub fn on_alloc(&mut self, size: u64) {
        self.allocated_bytes += size;
        self.peak_allocated_bytes = self.peak_allocated_bytes.max(self.allocated_bytes);
        self.live_allocs += 1;
        self.total_allocs += 1;
    }

    pub fn on_free(&mut self, size: u64) {
        self.allocated_bytes -= size;
        self.live_allocs -= 1;
        self.total_frees += 1;
    }

    pub fn on_fail(&mut self) {
        self.failed_allocs += 1;
    }

    pub fn render(&self, capacity: u64, free_regions: u64, largest_free: u64) -> AllocStats {
        AllocStats {
            capacity,
            allocated_bytes: self.allocated_bytes,
            peak_allocated_bytes: self.peak_allocated_bytes,
            live_allocs: self.live_allocs,
            total_allocs: self.total_allocs,
            total_frees: self.total_frees,
            failed_allocs: self.failed_allocs,
            free_regions,
            largest_free,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_metric() {
        let s = AllocStats {
            capacity: 1000,
            allocated_bytes: 0,
            largest_free: 1000,
            ..Default::default()
        };
        assert_eq!(s.external_fragmentation(), 0.0);

        let s = AllocStats {
            capacity: 1000,
            allocated_bytes: 0,
            largest_free: 250,
            ..Default::default()
        };
        assert!((s.external_fragmentation() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn fully_allocated_region_has_zero_fragmentation() {
        let s = AllocStats {
            capacity: 1000,
            allocated_bytes: 1000,
            largest_free: 0,
            ..Default::default()
        };
        assert_eq!(s.external_fragmentation(), 0.0);
        assert_eq!(s.utilization(), 1.0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut c = StatsCore::default();
        c.on_alloc(100);
        c.on_alloc(200);
        c.on_free(100);
        c.on_alloc(50);
        assert_eq!(c.peak_allocated_bytes, 300);
        assert_eq!(c.allocated_bytes, 250);
        assert_eq!(c.live_allocs, 2);
    }
}
