//! Property-based tests of the fabric: mapped reads/writes agree with a
//! reference byte array, stats account every byte, and modeled costs stay
//! within the jitter envelope.

use proptest::prelude::*;
use tfsim::{CostModel, Fabric, MemOp, Path};

const SEG: usize = 1 << 16;

#[derive(Debug, Clone)]
enum Op {
    Write {
        node: u8,
        offset: u16,
        data: Vec<u8>,
    },
    Read {
        node: u8,
        offset: u16,
        len: u16,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 1..512)
        )
            .prop_map(|(node, offset, data)| Op::Write {
                node: node % 3,
                offset,
                data
            }),
        (any::<u8>(), any::<u16>(), 1..512u16).prop_map(|(node, offset, len)| Op::Read {
            node: node % 3,
            offset,
            len
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mapped_access_agrees_with_reference_model(ops in proptest::collection::vec(op_strategy(), 1..64)) {
        let fabric = Fabric::virtual_thymesisflow();
        let nodes: Vec<_> = (0..3).map(|_| fabric.register_node()).collect();
        let key = fabric.donate(nodes[0], SEG).unwrap();
        let maps: Vec<_> = nodes.iter().map(|&n| fabric.attach(n, key).unwrap()).collect();
        let mut model = vec![0u8; SEG];
        let mut expect_read_bytes = 0u64;
        let mut expect_write_bytes = 0u64;

        for op in ops {
            match op {
                Op::Write { node, offset, data } => {
                    let off = u64::from(offset);
                    let in_bounds = (off as usize) + data.len() <= SEG;
                    let r = maps[node as usize].write_at(off, &data);
                    prop_assert_eq!(r.is_ok(), in_bounds);
                    if in_bounds {
                        model[offset as usize..offset as usize + data.len()]
                            .copy_from_slice(&data);
                        expect_write_bytes += data.len() as u64;
                    }
                }
                Op::Read { node, offset, len } => {
                    let off = u64::from(offset);
                    let in_bounds = (off as usize) + (len as usize) <= SEG;
                    let r = maps[node as usize].read_vec(off, len as usize);
                    prop_assert_eq!(r.is_ok(), in_bounds);
                    if let Ok(data) = r {
                        prop_assert_eq!(
                            &data[..],
                            &model[offset as usize..offset as usize + len as usize]
                        );
                        expect_read_bytes += u64::from(len);
                    }
                }
            }
        }
        let snap = fabric.stats().snapshot();
        prop_assert_eq!(snap.local_read_bytes + snap.remote_read_bytes, expect_read_bytes);
        prop_assert_eq!(snap.local_write_bytes + snap.remote_write_bytes, expect_write_bytes);
    }

    #[test]
    fn charged_cost_stays_within_jitter_envelope(len in 1usize..(1 << 20)) {
        let fabric = Fabric::virtual_thymesisflow();
        let a = fabric.register_node();
        let b = fabric.register_node();
        let key = fabric.donate(a, 1 << 20).unwrap();
        let map = fabric.attach(b, key).unwrap();
        let model = CostModel::thymesisflow();
        let nominal = model.cost(Path::Remote, MemOp::Read, len);

        let mut buf = vec![0u8; len];
        let (_, charged) = fabric.clock().time(|| map.read_at(0, &mut buf).unwrap());
        let lo = nominal.mul_f64(1.0 - model.jitter - 1e-6);
        let hi = nominal.mul_f64(1.0 + model.jitter + 1e-6);
        prop_assert!(
            charged >= lo && charged <= hi,
            "charged {charged:?} outside [{lo:?}, {hi:?}]"
        );
    }

    #[test]
    fn views_never_escape_their_window(base in 0u64..(1 << 15), len in 1u64..(1 << 14)) {
        let fabric = Fabric::virtual_thymesisflow();
        let a = fabric.register_node();
        let key = fabric.donate(a, 1 << 16).unwrap();
        let map = fabric.attach(a, key).unwrap();
        let view = map.view(base, len).unwrap();
        // Reading the full window works; one byte past it fails.
        let mut buf = vec![0u8; len as usize];
        view.read_at(0, &mut buf).unwrap();
        let mut one = [0u8; 1];
        prop_assert!(view.read_at(len, &mut one).is_err());
        prop_assert!(view.write_at(len, &one).is_err());
    }
}
