//! In-process transport.
//!
//! A [`InprocHub`] is a namespace of endpoints; binding a name yields a
//! listener, connecting to the name yields the other half of a fresh
//! channel pair. Everything is plain crossbeam channels, so a simulated
//! multi-node cluster runs in one process with no sockets, files, or
//! nondeterministic OS buffering.

use crate::frame::Frame;
use crate::transport::{Conn, Listener, StopHandle};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How often a blocked accept checks its stop flag. An incoming
/// connection wakes the parked `recv_timeout` immediately, so this only
/// bounds listener-stop latency — it can be generous, which matters when
/// one process hosts a whole simulated fabric of listeners.
const POLL: Duration = Duration::from_millis(250);

/// One half of an in-process connection.
#[derive(Debug)]
pub struct InprocConn {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    label: String,
    recv_timeout: Option<Duration>,
}

impl InprocConn {
    fn pair(a: &str, b: &str) -> (InprocConn, InprocConn) {
        let (atx, brx) = unbounded();
        let (btx, arx) = unbounded();
        (
            InprocConn {
                tx: atx,
                rx: arx,
                label: b.to_string(),
                recv_timeout: None,
            },
            InprocConn {
                tx: btx,
                rx: brx,
                label: a.to_string(),
                recv_timeout: None,
            },
        )
    }
}

impl Conn for InprocConn {
    fn send(&mut self, frame: &Frame) -> io::Result<()> {
        self.tx
            .send(frame.clone())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "inproc peer closed"))
    }

    fn recv(&mut self) -> io::Result<Frame> {
        match self.recv_timeout {
            None => self
                .rx
                .recv()
                .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "inproc peer closed")),
            Some(timeout) => match self.rx.recv_timeout(timeout) {
                Ok(frame) => Ok(frame),
                Err(RecvTimeoutError::Timeout) => Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "inproc recv timed out",
                )),
                Err(RecvTimeoutError::Disconnected) => Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "inproc peer closed",
                )),
            },
        }
    }

    fn set_recv_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.recv_timeout = timeout;
        Ok(())
    }

    fn peer(&self) -> String {
        self.label.clone()
    }

    fn try_clone(&self) -> io::Result<Box<dyn Conn>> {
        // Crossbeam endpoints are cheaply cloneable. Frames go to whichever
        // clone happens to be blocked in `recv`, so callers must follow the
        // one-receiver discipline documented on `Conn::try_clone`.
        Ok(Box::new(InprocConn {
            tx: self.tx.clone(),
            rx: self.rx.clone(),
            label: self.label.clone(),
            recv_timeout: self.recv_timeout,
        }))
    }
}

type Registry = Arc<Mutex<HashMap<String, Sender<InprocConn>>>>;

/// A namespace of in-process endpoints. Clones share the namespace.
#[derive(Clone, Default)]
pub struct InprocHub {
    registry: Registry,
}

impl InprocHub {
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `name`, yielding a listener. Fails if already bound.
    pub fn bind(&self, name: &str) -> io::Result<InprocListener> {
        let (tx, rx) = bounded(64);
        let mut reg = self.registry.lock().unwrap();
        if reg.contains_key(name) {
            return Err(io::Error::new(
                io::ErrorKind::AddrInUse,
                format!("inproc endpoint '{name}' already bound"),
            ));
        }
        reg.insert(name.to_string(), tx);
        Ok(InprocListener {
            name: name.to_string(),
            rx,
            stop: StopHandle::new(),
            registry: Arc::clone(&self.registry),
        })
    }

    /// Connect to a bound endpoint.
    pub fn connect(&self, name: &str) -> io::Result<InprocConn> {
        let tx = {
            let reg = self.registry.lock().unwrap();
            reg.get(name).cloned().ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("inproc endpoint '{name}' not bound"),
                )
            })?
        };
        let (client, server) = InprocConn::pair("client", name);
        tx.send(server).map_err(|_| {
            io::Error::new(
                io::ErrorKind::ConnectionRefused,
                format!("inproc endpoint '{name}' no longer accepting"),
            )
        })?;
        Ok(client)
    }
}

/// Listener half of an in-process endpoint. Unbinds its name on drop.
#[derive(Debug)]
pub struct InprocListener {
    name: String,
    rx: Receiver<InprocConn>,
    stop: StopHandle,
    registry: Registry,
}

impl Listener for InprocListener {
    fn accept(&mut self) -> io::Result<Box<dyn Conn>> {
        loop {
            if self.stop.is_stopped() {
                return Err(io::Error::new(
                    io::ErrorKind::Interrupted,
                    "listener stopped",
                ));
            }
            match self.rx.recv_timeout(POLL) {
                Ok(conn) => return Ok(Box::new(conn)),
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotConnected,
                        "inproc hub dropped",
                    ))
                }
            }
        }
    }

    fn stop_handle(&self) -> StopHandle {
        self.stop.clone()
    }

    fn addr(&self) -> String {
        self.name.clone()
    }
}

impl Drop for InprocListener {
    fn drop(&mut self) {
        self.registry.lock().unwrap().remove(&self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_and_exchange() {
        let hub = InprocHub::new();
        let mut listener = hub.bind("store").unwrap();
        let t = std::thread::spawn({
            let hub = hub.clone();
            move || {
                let mut c = hub.connect("store").unwrap();
                c.send(&Frame::new(1, &b"ping"[..])).unwrap();
                let pong = c.recv().unwrap();
                assert_eq!(&pong.payload[..], b"pong");
            }
        });
        let mut server = listener.accept().unwrap();
        let ping = server.recv().unwrap();
        assert_eq!(&ping.payload[..], b"ping");
        server.send(&Frame::new(2, &b"pong"[..])).unwrap();
        t.join().unwrap();
    }

    #[test]
    fn connect_unbound_refused() {
        let hub = InprocHub::new();
        let err = hub.connect("nobody").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused);
    }

    #[test]
    fn double_bind_rejected() {
        let hub = InprocHub::new();
        let _l = hub.bind("x").unwrap();
        assert_eq!(hub.bind("x").unwrap_err().kind(), io::ErrorKind::AddrInUse);
    }

    #[test]
    fn name_freed_on_listener_drop() {
        let hub = InprocHub::new();
        drop(hub.bind("x").unwrap());
        let _l2 = hub.bind("x").unwrap();
    }

    #[test]
    fn stop_unblocks_accept() {
        let hub = InprocHub::new();
        let mut listener = hub.bind("s").unwrap();
        let stop = listener.stop_handle();
        let t = std::thread::spawn(move || listener.accept().map(|_| ()));
        std::thread::sleep(Duration::from_millis(30));
        stop.stop();
        let res = t.join().unwrap();
        assert_eq!(res.unwrap_err().kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn recv_after_peer_drop_is_eof() {
        let hub = InprocHub::new();
        let mut listener = hub.bind("s").unwrap();
        let client = hub.connect("s").unwrap();
        let mut server = listener.accept().unwrap();
        drop(client);
        assert_eq!(
            server.recv().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn recv_timeout_expires_and_conn_survives() {
        let hub = InprocHub::new();
        let mut listener = hub.bind("s").unwrap();
        let mut client = hub.connect("s").unwrap();
        let mut server = listener.accept().unwrap();
        server
            .set_recv_timeout(Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(server.recv().unwrap_err().kind(), io::ErrorKind::TimedOut);
        client.send(&Frame::new(3, &b"late"[..])).unwrap();
        assert_eq!(&server.recv().unwrap().payload[..], b"late");
    }

    #[test]
    fn peer_drop_under_timeout_is_eof() {
        let hub = InprocHub::new();
        let mut listener = hub.bind("s").unwrap();
        let client = hub.connect("s").unwrap();
        let mut server = listener.accept().unwrap();
        server
            .set_recv_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        drop(client);
        assert_eq!(
            server.recv().unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn cloned_halves_split_send_and_recv() {
        let hub = InprocHub::new();
        let mut listener = hub.bind("s").unwrap();
        let mut client = hub.connect("s").unwrap();
        let mut server = listener.accept().unwrap();
        // Send via the clone, receive the echo via the original.
        let mut sender = client.try_clone().unwrap();
        sender.send(&Frame::new(1, &b"via-clone"[..])).unwrap();
        let f = server.recv().unwrap();
        server.send(&Frame::new(2, f.payload)).unwrap();
        assert_eq!(&client.recv().unwrap().payload[..], b"via-clone");
    }

    #[test]
    fn hubs_are_isolated() {
        let a = InprocHub::new();
        let b = InprocHub::new();
        let _l = a.bind("s").unwrap();
        assert!(b.connect("s").is_err());
    }
}
