#!/usr/bin/env bash
# docs-drift: fail when a documented interconnect verb number disagrees
# with the method constant in crates/disagg/src/proto.rs.
#
# The docs reference wire verbs as `VERB` (method id N) — every such
# pair is cross-checked against `pub const VERB: u32 = N;`. A verb the
# docs name but proto.rs no longer defines is drift too.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
while IFS=: read -r file line verb id; do
    [ -n "$verb" ] || continue
    actual=$(sed -n "s/^ *pub const ${verb}: u32 = \([0-9]*\);.*/\1/p" crates/disagg/src/proto.rs)
    if [ -z "$actual" ]; then
        echo "docs-drift: $file:$line documents \`$verb\` but proto.rs does not define it" >&2
        status=1
    elif [ "$actual" != "$id" ]; then
        echo "docs-drift: $file:$line says \`$verb\` is method id $id but proto.rs says $actual" >&2
        status=1
    fi
done < <(grep -nH -oE '`[A-Z_]+`[^()]*\(method id [0-9]+\)' DESIGN.md README.md EXPERIMENTS.md ROADMAP.md 2>/dev/null |
    sed -E 's/^([^:]+):([0-9]+):`([A-Z_]+)`[^0-9]*([0-9]+)\)$/\1:\2:\3:\4/')

if [ "$status" -eq 0 ]; then
    echo "docs-drift: documented method ids agree with proto.rs"
fi
exit $status
