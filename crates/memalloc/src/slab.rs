//! Size-class slab allocator — segregated free lists over segment arenas.
//!
//! The collective-allocator observation (Hideshima et al., PAPERS.md) is
//! that objects which travel together should live together: placement
//! policy, not just placement mechanism, dominates locality. Applied to
//! this store, the Table I workload allocates objects from a handful of
//! characteristic sizes over and over, and a first-fit scan re-derives
//! the same placement decision from scratch on every call — O(free
//! regions) per allocation, degrading exactly when churn fragments the
//! region. [`Slab`] instead rounds each request up to a *size class*
//! (a ladder derived from the Table I distribution — see
//! [`SIZE_CLASSES`]), carves class-sized slots out of contiguous *slab
//! extents*, and serves every subsequent allocation of that class from a
//! per-class free-slot list in O(1). Objects of the same class — the
//! ones that travel together in Table I batches — end up packed in the
//! same extents.
//!
//! Structure:
//!
//! * an inner [`FirstFit`] *extent allocator* owns the raw region and
//!   hands out slab extents (and oversized allocations — anything above
//!   the largest class falls through to it unchanged);
//! * each class keeps a set of slabs; a slab is one extent divided into
//!   equal slots, with a LIFO free-slot list;
//! * `free` returns a slot to its class (so the next same-class
//!   allocation reuses it exactly), and retires a slab whose last slot
//!   was freed back to the extent allocator, where it coalesces — the
//!   whole region is reusable by any class (or oversize) again;
//! * when a full-size slab extent does not fit, the carve degrades
//!   (fewer slots, down to one) before falling back to a plain first-fit
//!   allocation, so a nearly-full region behaves no worse than
//!   [`FirstFit`] alone.
//!
//! Alignment: extents are 64-byte aligned and every class size is a
//! multiple of 64, so slots satisfy any alignment up to
//! [`crate::DEFAULT_ALIGN`]; stricter alignments take the oversize path.

use crate::firstfit::FirstFit;
use crate::stats::StatsCore;
use crate::{
    check_request, AllocError, AllocStats, ClassOccupancy, RegionAllocator, DEFAULT_ALIGN,
};
use std::collections::{BTreeSet, HashMap};

/// The size-class ladder, in bytes. Power-of-two rungs give a worst-case
/// internal fragmentation of 50%; the three off-ladder rungs (10 240,
/// 102 400 and the 1 MiB top) sit just above the paper's Table I object
/// sizes (1 kB / 10 kB / 100 kB / 1 MB decimal) so the dominant workload
/// sizes fill their slots ≥ 95%. Requests above the top rung are not
/// slab-managed (Table I's 10 MB / 100 MB rows): they fall through to
/// the extent allocator's first-fit path.
pub const SIZE_CLASSES: [u64; 17] = [
    64, 128, 256, 512, 1_024, 2_048, 4_096, 8_192, 10_240, 16_384, 32_768, 65_536, 102_400,
    131_072, 262_144, 524_288, 1_048_576,
];

/// Target bytes per slab extent; classes larger than this get one slot
/// per slab.
const SLAB_TARGET_BYTES: u64 = 64 * 1024;

/// One slab extent: `slots` equal slots of the owning class's size.
#[derive(Debug, Clone)]
struct SlabMeta {
    /// Extent size in bytes (slots × class size).
    bytes: u64,
    /// Free slot offsets, reused LIFO (the hottest slot first).
    free: Vec<u64>,
    /// Live slots in this slab.
    live: u64,
}

/// Per-class state: all slabs of the class plus the subset with free
/// slots (lowest-addressed first, to keep placement packed).
#[derive(Debug, Clone, Default)]
struct ClassState {
    slabs: HashMap<u64, SlabMeta>,
    partial: BTreeSet<u64>,
    /// Requested bytes across the class's live slots (kept incrementally
    /// so occupancy reporting is O(classes), not O(live allocations)).
    live_bytes: u64,
}

/// Where a live allocation's bytes came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LiveKind {
    /// A slot inside the slab extent starting at `slab_off` of `class`.
    Class { class: usize, slab_off: u64 },
    /// Allocated directly from the extent allocator.
    Oversize,
}

#[derive(Debug, Clone, Copy)]
struct LiveAlloc {
    size: u64,
    kind: LiveKind,
}

/// See the module docs.
#[derive(Debug, Clone)]
pub struct Slab {
    extents: FirstFit,
    classes: Vec<ClassState>,
    live: HashMap<u64, LiveAlloc>,
    stats: StatsCore,
}

impl Slab {
    pub fn new(capacity: u64) -> Self {
        Slab {
            extents: FirstFit::new(capacity),
            classes: vec![ClassState::default(); SIZE_CLASSES.len()],
            live: HashMap::new(),
            stats: StatsCore::default(),
        }
    }

    /// The smallest class that can hold `size`, if any.
    fn class_for(size: u64) -> Option<usize> {
        SIZE_CLASSES.iter().position(|&c| c >= size)
    }

    /// Slots a fresh slab of `slot` bytes should carry at full size.
    fn full_slots(slot: u64) -> u64 {
        (SLAB_TARGET_BYTES / slot).max(1)
    }

    /// Carve a new slab for `class`, degrading the slot count when the
    /// full-size extent does not fit. Returns the slab's extent offset.
    fn carve(&mut self, class: usize) -> Option<u64> {
        let slot = SIZE_CLASSES[class];
        let mut slots = Self::full_slots(slot);
        loop {
            match self.extents.alloc_aligned(slots * slot, DEFAULT_ALIGN) {
                Ok(off) => {
                    // Free list LIFO-ordered so the lowest slot pops first.
                    let free: Vec<u64> = (0..slots).rev().map(|i| off + i * slot).collect();
                    self.classes[class].slabs.insert(
                        off,
                        SlabMeta {
                            bytes: slots * slot,
                            free,
                            live: 0,
                        },
                    );
                    self.classes[class].partial.insert(off);
                    return Some(off);
                }
                Err(_) if slots > 1 => slots /= 2,
                Err(_) => return None,
            }
        }
    }

    /// Per-class occupancy for observability and fragmentation tests.
    pub fn occupancy(&self) -> Vec<ClassOccupancy> {
        SIZE_CLASSES
            .iter()
            .zip(&self.classes)
            .map(|(&class_size, st)| {
                let held_bytes: u64 = st.slabs.values().map(|s| s.bytes).sum();
                let live_slots: u64 = st.slabs.values().map(|s| s.live).sum();
                let live_bytes = st.live_bytes;
                ClassOccupancy {
                    class_size,
                    slabs: st.slabs.len() as u64,
                    total_slots: held_bytes / class_size,
                    live_slots,
                    live_bytes,
                    held_bytes,
                }
            })
            .collect()
    }
}

impl RegionAllocator for Slab {
    fn alloc_aligned(&mut self, size: u64, align: u64) -> Result<u64, AllocError> {
        check_request(size, align)?;
        let class = if align <= DEFAULT_ALIGN {
            Self::class_for(size)
        } else {
            // Stricter alignment than slot granularity: first-fit path.
            None
        };
        if let Some(class) = class {
            let slab_off = match self.classes[class].partial.iter().next().copied() {
                Some(off) => Some(off),
                None => self.carve(class),
            };
            if let Some(slab_off) = slab_off {
                let slab = self.classes[class]
                    .slabs
                    .get_mut(&slab_off)
                    .expect("partial set and slab map agree");
                let off = slab.free.pop().expect("partial slab has a free slot");
                slab.live += 1;
                if slab.free.is_empty() {
                    self.classes[class].partial.remove(&slab_off);
                }
                self.classes[class].live_bytes += size;
                self.live.insert(
                    off,
                    LiveAlloc {
                        size,
                        kind: LiveKind::Class { class, slab_off },
                    },
                );
                self.stats.on_alloc(size);
                return Ok(off);
            }
            // No slab fits even degraded: fall through to the extent
            // allocator with the raw request so a tight region still
            // serves what first-fit alone would.
        }
        match self.extents.alloc_aligned(size, align) {
            Ok(off) => {
                self.live.insert(
                    off,
                    LiveAlloc {
                        size,
                        kind: LiveKind::Oversize,
                    },
                );
                self.stats.on_alloc(size);
                Ok(off)
            }
            Err(AllocError::OutOfMemory { requested, free }) => {
                self.stats.on_fail();
                Err(AllocError::OutOfMemory { requested, free })
            }
            Err(e) => Err(e),
        }
    }

    fn free(&mut self, offset: u64) -> Result<(), AllocError> {
        let Some(alloc) = self.live.remove(&offset) else {
            return Err(AllocError::UnknownAllocation(offset));
        };
        match alloc.kind {
            LiveKind::Oversize => {
                self.extents
                    .free(offset)
                    .expect("live map and extent allocator agree");
            }
            LiveKind::Class { class, slab_off } => {
                let st = &mut self.classes[class];
                st.live_bytes -= alloc.size;
                let slab = st.slabs.get_mut(&slab_off).expect("slab of a live slot");
                slab.free.push(offset);
                slab.live -= 1;
                if slab.live == 0 {
                    // Retire: the whole extent goes back (and coalesces)
                    // so any class — or an oversize request — can reuse it.
                    st.slabs.remove(&slab_off);
                    st.partial.remove(&slab_off);
                    self.extents
                        .free(slab_off)
                        .expect("slab extents are live extent allocations");
                } else {
                    st.partial.insert(slab_off);
                }
            }
        }
        self.stats.on_free(alloc.size);
        Ok(())
    }

    fn allocation_size(&self, offset: u64) -> Option<u64> {
        self.live.get(&offset).map(|l| l.size)
    }

    fn capacity(&self) -> u64 {
        self.extents.capacity()
    }

    fn stats(&self) -> AllocStats {
        // Free-region shape comes from the extent map: slots held free
        // inside partial slabs are class-reserved, not general-purpose,
        // so they are deliberately not counted in `largest_free`.
        let ext = self.extents.stats();
        self.stats
            .render(ext.capacity, ext.free_regions, ext.largest_free)
    }

    fn class_stats(&self) -> Vec<ClassOccupancy> {
        self.occupancy()
    }

    fn name(&self) -> &'static str {
        "slab"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_aligned_and_sorted() {
        for w in SIZE_CLASSES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &c in &SIZE_CLASSES {
            assert_eq!(c % DEFAULT_ALIGN, 0, "class {c} not 64-aligned");
        }
        // Table I sizes (≤ 1 MB) land in a class with ≥ 95% slot fill.
        for size in [1_000u64, 10_000, 100_000, 1_000_000] {
            let class = SIZE_CLASSES[Slab::class_for(size).unwrap()];
            assert!(
                size as f64 / class as f64 >= 0.95,
                "size {size} fills class {class} poorly"
            );
        }
    }

    #[test]
    fn same_class_reuses_freed_slot() {
        let mut a = Slab::new(1 << 20);
        let x = a.alloc(1_000).unwrap();
        let y = a.alloc(1_000).unwrap();
        assert_ne!(x, y);
        a.free(x).unwrap();
        // The freed slot is the next slot handed out for this class.
        let z = a.alloc(900).unwrap();
        assert_eq!(z, x, "freed slot must be reused by its class");
    }

    #[test]
    fn classes_do_not_share_slots() {
        let mut a = Slab::new(1 << 20);
        let small1 = a.alloc(100).unwrap();
        let small2 = a.alloc(100).unwrap();
        a.free(small1).unwrap();
        // The small slab still lives (small2 pins it), so its freed slot
        // is class-reserved: a big allocation never lands on it.
        let big = a.alloc(50_000).unwrap();
        assert_ne!(big, small1);
        // The reserved slot goes back to its own class.
        assert_eq!(a.alloc(100).unwrap(), small1);
        a.free(small1).unwrap();
        a.free(small2).unwrap();
        a.free(big).unwrap();
        assert_eq!(a.stats().allocated_bytes, 0);
    }

    #[test]
    fn empty_slab_retires_to_extent_allocator() {
        let mut a = Slab::new(1 << 20);
        let offs: Vec<u64> = (0..8).map(|_| a.alloc(4_096).unwrap()).collect();
        assert!(a.stats().allocated_bytes > 0);
        for o in offs {
            a.free(o).unwrap();
        }
        // Everything retired: the full region is one coalesced extent.
        let s = a.stats();
        assert_eq!(s.allocated_bytes, 0);
        assert_eq!(s.free_regions, 1);
        assert_eq!(s.largest_free, 1 << 20);
        let all = a.alloc_aligned((1 << 20) - 64, 1).unwrap();
        a.free(all).unwrap();
    }

    #[test]
    fn oversize_falls_through_to_first_fit() {
        let mut a = Slab::new(8 << 20);
        let big = a.alloc(2_000_000).unwrap(); // above the largest class
        assert_eq!(a.allocation_size(big), Some(2_000_000));
        let occ = a.occupancy();
        assert!(occ.iter().all(|c| c.live_slots == 0), "no class involved");
        a.free(big).unwrap();
        assert_eq!(a.stats().allocated_bytes, 0);
    }

    #[test]
    fn strict_alignment_takes_the_extent_path() {
        let mut a = Slab::new(1 << 20);
        let pad = a.alloc_aligned(37, 1).unwrap();
        let off = a.alloc_aligned(100, 4_096).unwrap();
        assert_eq!(off % 4_096, 0);
        a.free(off).unwrap();
        a.free(pad).unwrap();
    }

    #[test]
    fn tight_region_degrades_to_first_fit_not_oom() {
        // 4 KiB region: a full 64 KiB slab never fits, so the carve must
        // degrade. The 2 KiB class lands a 2-slot slab covering the whole
        // region; both slots are usable, a third allocation is OOM.
        let mut a = Slab::new(4_096);
        let x = a.alloc(2_048).unwrap();
        let y = a.alloc(2_048).unwrap();
        assert!(matches!(
            a.alloc(2_048),
            Err(AllocError::OutOfMemory { .. })
        ));
        a.free(x).unwrap();
        a.free(y).unwrap();
        // Retired: the region is whole again for any request shape.
        let all = a.alloc_aligned(4_096, 1).unwrap();
        a.free(all).unwrap();
    }

    #[test]
    fn occupancy_tracks_slots_and_bytes() {
        let mut a = Slab::new(1 << 20);
        let offs: Vec<u64> = (0..3).map(|_| a.alloc(1_000).unwrap()).collect();
        let occ = a.occupancy();
        let c1k = occ.iter().find(|c| c.class_size == 1_024).unwrap();
        assert_eq!(c1k.live_slots, 3);
        assert_eq!(c1k.live_bytes, 3_000);
        assert_eq!(c1k.slabs, 1);
        assert!(c1k.total_slots >= c1k.live_slots);
        assert_eq!(c1k.held_bytes, c1k.total_slots * 1_024);
        for o in offs {
            a.free(o).unwrap();
        }
        let occ = a.occupancy();
        let c1k = occ.iter().find(|c| c.class_size == 1_024).unwrap();
        assert_eq!(c1k.live_slots, 0);
        assert_eq!(c1k.held_bytes, 0, "empty slab retired");
    }
}
