#![allow(clippy::all)] // vendored offline stand-in

//! Offline stand-in for the `bytes` crate.
//!
//! The build container has no registry access, so this workspace vendors a
//! minimal re-implementation of the `bytes` API surface it actually uses:
//! [`Bytes`] (cheaply cloneable immutable byte buffer), [`BytesMut`]
//! (growable builder), and the [`Buf`]/[`BufMut`] cursor traits. Semantics
//! match the real crate for the covered subset; zero-copy `split_to`/`slice`
//! are preserved via a shared `Arc<[u8]>`.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes backed by a shared buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (no allocation in the real crate; here we share
    /// one allocation per call, which is fine for tests and protocol tags).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Split off and return the first `at` bytes, advancing `self` past them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Zero-copy sub-slice.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == &other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self[..].iter()
    }
}

/// A growable byte buffer used to build messages.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.buf.clone()), f)
    }
}

/// Read-cursor over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice past end");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write-cursor over a growable buffer.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, s: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_slice_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[4, 5]);
    }

    #[test]
    fn buf_cursor_reads() {
        let mut b = Bytes::from(vec![7, 1, 0, 0, 0]);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 1);
        assert!(!b.has_remaining());
    }

    #[test]
    fn bytes_mut_builds_and_freezes() {
        let mut m = BytesMut::with_capacity(8);
        m.put_u8(1);
        m.put_u32_le(2);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(&b[..], &[1, 2, 0, 0, 0, b'x', b'y']);
    }
}
