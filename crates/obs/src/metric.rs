//! Atomic metric primitives: counters, gauges, log-scale histograms.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::snapshot::HistogramSnapshot;

/// Number of histogram buckets: one per power of two of a `u64` value.
pub const BUCKETS: usize = 64;

/// Bucket index holding `value`: `floor(log2(max(value, 1)))`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (63 - (value | 1).leading_zeros()) as usize
}

/// Inclusive lower bound of bucket `i`.
#[inline]
pub fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Inclusive upper bound of bucket `i`.
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter starting at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (e.g. a backlog depth).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// New gauge starting at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the current value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` to the current value.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` from the current value.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log₂-scale histogram. Bucket `i` holds values in
/// `[bucket_lo(i), bucket_hi(i)]`; recording touches only atomics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one observation. Lock-free: four relaxed atomic ops.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a wall-clock duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Start a scoped wall-clock timer that records into this histogram
    /// when dropped.
    pub fn start_timer(self: &Arc<Histogram>) -> ScopedTimer {
        ScopedTimer {
            hist: Arc::clone(self),
            start: Instant::now(),
            armed: true,
        }
    }

    /// Consistent-enough point-in-time copy (relaxed reads; counts may
    /// lag sums by in-flight records, which merge semantics tolerate).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Records wall-clock elapsed time into a histogram on drop.
///
/// ```
/// use obs::Registry;
/// let reg = Registry::new();
/// let hist = reg.histogram("op.latency_ns");
/// {
///     let _t = hist.start_timer();
///     // ... the operation being measured ...
/// } // recorded here
/// assert_eq!(hist.snapshot().count, 1);
/// ```
#[derive(Debug)]
pub struct ScopedTimer {
    hist: Arc<Histogram>,
    start: Instant,
    armed: bool,
}

impl ScopedTimer {
    /// Stop the timer without recording (e.g. on an error path that
    /// should not pollute the success-latency histogram).
    pub fn discard(mut self) {
        self.armed = false;
    }

    /// Record now and disarm, returning the observed duration.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        self.hist.record_duration(elapsed);
        self.armed = false;
        elapsed
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record_duration(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..BUCKETS {
            assert!(bucket_lo(i) <= bucket_hi(i));
            assert_eq!(bucket_index(bucket_lo(i)), i);
            assert_eq!(bucket_index(bucket_hi(i)), i);
            if i > 0 {
                assert_eq!(bucket_hi(i - 1) + 1, bucket_lo(i));
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1_001_006);
        assert_eq!(s.max, 1_000_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn scoped_timer_records_on_drop_and_discard_skips() {
        let h = Arc::new(Histogram::new());
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
        h.start_timer().discard();
        assert_eq!(h.count(), 1);
        let d = h.start_timer().stop();
        assert_eq!(h.count(), 2);
        assert!(d.as_nanos() > 0);
    }
}
