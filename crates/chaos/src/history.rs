//! Operation history: what every client saw, with real-time intervals.
//!
//! The soak's worker threads record every client-visible operation —
//! put, get, batched get, delete, contains — as an [`Event`] carrying
//! its invocation and completion timestamps (microseconds since the
//! recorder's epoch). The checker ([`crate::checker`]) later validates
//! the whole history against the store's consistency contract. Real-time
//! intervals matter because the invariants are interval-based: operation
//! A *precedes* B only if A completed before B was invoked; overlapping
//! operations are concurrent and either order must be legal.

use parking_lot::Mutex;
use plasma::checksum;
use std::time::Instant;

/// What a read observed for one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observed {
    /// The object was absent (or unreachable — indistinguishable to a
    /// client, and both are legal at any time thanks to eviction).
    Missing,
    /// A payload that verified against its embedded tag: exactly the
    /// bytes some put sealed.
    Value {
        /// The version tag embedded in the payload.
        tag: u64,
    },
    /// A payload that failed verification — torn, spliced or corrupted.
    /// Always a violation.
    Torn,
}

impl Observed {
    /// Classify a returned payload: verify it against its embedded tag.
    pub fn classify(data: &[u8]) -> Observed {
        match checksum::embedded_tag(data) {
            Some(tag) if checksum::verify(tag, data) => Observed::Value { tag },
            _ => Observed::Torn,
        }
    }
}

/// The operation an [`Event`] describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// `put(name)` of a payload tagged `tag`; `ok` iff the put was acked.
    Put {
        /// Object name (small integer namespace, collides on purpose).
        name: u8,
        /// The unique version tag written into the payload.
        tag: u64,
        /// Whether the store acknowledged the put.
        ok: bool,
    },
    /// `get(name)` and what came back.
    Get {
        /// Object name.
        name: u8,
        /// What the read observed.
        observed: Observed,
    },
    /// One batched multi-get; `names[i]` produced `observed[i]`.
    BatchGet {
        /// Object names in request order (duplicates allowed).
        names: Vec<u8>,
        /// Per-slot observations, same order.
        observed: Vec<Observed>,
    },
    /// `delete(name)`; `ok` iff the store acked the delete.
    Delete {
        /// Object name.
        name: u8,
        /// Whether the delete was acknowledged.
        ok: bool,
    },
    /// `contains(name)`.
    Contains {
        /// Object name.
        name: u8,
        /// The store's answer.
        present: bool,
    },
}

/// One recorded operation with its real-time interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Which worker issued it (for debugging; invariants don't use it).
    pub client: usize,
    /// Microseconds since the recorder's epoch when the op was invoked.
    pub invoke_us: u64,
    /// Microseconds since the epoch when the op returned.
    pub complete_us: u64,
    /// The operation.
    pub kind: EventKind,
}

impl Event {
    /// True if this event completed strictly before `other` was invoked
    /// (the real-time "precedes" relation).
    pub fn precedes(&self, other: &Event) -> bool {
        self.complete_us < other.invoke_us
    }
}

/// Thread-safe collector of [`Event`]s sharing one epoch.
#[derive(Debug)]
pub struct HistoryRecorder {
    epoch: Instant,
    events: Mutex<Vec<Event>>,
}

impl HistoryRecorder {
    /// A fresh recorder; its epoch is now.
    pub fn new() -> HistoryRecorder {
        HistoryRecorder {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds since the epoch — call at invocation and completion.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record one completed operation.
    pub fn record(&self, client: usize, invoke_us: u64, kind: EventKind) {
        let complete_us = self.now_us();
        self.events.lock().push(Event {
            client,
            invoke_us,
            complete_us,
            kind,
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the history, sorted by invocation time.
    pub fn take(&self) -> Vec<Event> {
        let mut events = std::mem::take(&mut *self.events.lock());
        events.sort_by_key(|e| (e.invoke_us, e.complete_us));
        events
    }
}

impl Default for HistoryRecorder {
    fn default() -> Self {
        HistoryRecorder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_accepts_sealed_and_rejects_torn() {
        let good = checksum::fill(77, 64);
        assert_eq!(Observed::classify(&good), Observed::Value { tag: 77 });
        let mut bad = good.clone();
        bad[40] ^= 0x10;
        assert_eq!(Observed::classify(&bad), Observed::Torn);
        assert_eq!(Observed::classify(b"tiny"), Observed::Torn);
    }

    #[test]
    fn recorder_orders_and_timestamps() {
        let rec = HistoryRecorder::new();
        let t0 = rec.now_us();
        rec.record(
            0,
            t0,
            EventKind::Put {
                name: 1,
                tag: 10,
                ok: true,
            },
        );
        let t1 = rec.now_us();
        rec.record(
            1,
            t1,
            EventKind::Get {
                name: 1,
                observed: Observed::Missing,
            },
        );
        let events = rec.take();
        assert_eq!(events.len(), 2);
        assert!(events[0].invoke_us <= events[0].complete_us);
        assert!(events[0].invoke_us <= events[1].invoke_us);
        assert!(rec.is_empty());
    }
}
