//! # bench — harnesses regenerating every table and figure of the paper
//!
//! Library pieces shared by the harness binaries (`src/bin/*.rs`) and the
//! Criterion benches (`benches/*.rs`):
//!
//! * [`workload`] — Table I benchmark specs and object commit routines;
//! * [`fabric`] — topology-driven cluster construction and the A6
//!   multi-node workload replay with per-tier latency histograms;
//! * [`measure`] — summary statistics and text-table rendering;
//! * [`runner`] — the paper's retrieval/read measurement procedure;
//! * [`storeside`] — store-side latency report from the obs registries,
//!   appended to the figure output.
//!
//! See DESIGN.md §4 for the experiment index (which binary regenerates
//! which table/figure) and EXPERIMENTS.md for paper-vs-measured results.

pub mod cli;
pub mod fabric;
pub mod measure;
pub mod runner;
pub mod storeside;
pub mod workload;

pub use cli::HarnessOpts;
pub use fabric::{
    cluster_config, run_cluster_schedule, run_cluster_workload, ClusterRunReport, TierStat,
};
pub use measure::{gibps, percentile, render_table, Summary};
pub use runner::{
    one_rep, run_benchmark, run_benchmark_between, BenchResult, RepSample, READ_CHUNK,
};
pub use storeside::{print_store_side, render_store_side};
pub use workload::{commit_ids, commit_objects, random_data, BenchSpec, TABLE_I, TABLE_I_SMALL};
