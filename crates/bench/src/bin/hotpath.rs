//! Experiment A9 — single-node hot-path concurrency microbench.
//!
//! Measures the create+get fast path of one `StoreCore` across the two
//! axes this repo's hot-path work added: object-table sharding (1 vs 16
//! shards) and the allocator (first-fit baseline vs size-class slab).
//! Before measuring, the region is deliberately pre-fragmented with
//! thousands of small holes — the state a long-lived store reaches
//! under Table I churn — so the baseline pays first-fit's linear free-
//! list scan on every create while the slab allocator stays O(1) per
//! size class.
//!
//! Output: a table of p50 / 99th-percentile create+get latency and
//! throughput per (config × thread count), written to
//! `BENCH_hotpath.json`. **Only the machine-independent speedup ratios
//! use ratchet-eligible key names** (`speedup_throughput_*`): the raw
//! wall-clock numbers (`p50_us`, `tail99_us`, `rate_kops`) are real
//! time on whatever machine ran the bench and would make the perf
//! ratchet compare incomparable hosts, so their keys deliberately stay
//! outside the ratcheted `p99`/`per_sec` families (see `--bin
//! ratchet`). The bin itself enforces the acceptance floor: at ≥4
//! threads the sharded+slab configuration must reach ≥1.5× the
//! single-mutex/first-fit baseline's throughput.
//!
//! Usage: `cargo run -p bench --bin hotpath --release [-- --small] [--reps N]`

use bench::{percentile, render_table, HarnessOpts};
use plasma::{AllocatorKind, ObjectId, StoreConfig, StoreCore};
use std::sync::Arc;
use std::time::Instant;
use tfsim::Fabric;

const CAPACITY: usize = 64 << 20;
const THREADS: &[usize] = &[1, 4, 16];
/// Pre-fragmentation prelude: this many 1 KiB objects, every other one
/// deleted, leaving `FRAG_OBJECTS / 2` small holes ahead of the
/// measured allocations in address order.
const FRAG_OBJECTS: usize = 10_000;
/// Measured object: 4000 B data + 16 B metadata = 4016 B total, which
/// no prelude hole can hold (first-fit scans past all of them) and
/// which maps to the slab's 4 KiB class.
const DATA_SIZE: u64 = 4_000;
const META_SIZE: u64 = 16;
/// Live objects each worker keeps before deleting its oldest.
const WINDOW: usize = 64;

struct Config {
    name: &'static str,
    shards: usize,
    allocator: AllocatorKind,
}

const CONFIGS: &[Config] = &[
    Config {
        name: "firstfit-1shard",
        shards: 1,
        allocator: AllocatorKind::FirstFit,
    },
    Config {
        name: "firstfit-16shard",
        shards: 16,
        allocator: AllocatorKind::FirstFit,
    },
    Config {
        name: "slab-1shard",
        shards: 1,
        allocator: AllocatorKind::Slab,
    },
    Config {
        name: "slab-16shard",
        shards: 16,
        allocator: AllocatorKind::Slab,
    },
];

fn oid(config: usize, thread: usize, i: usize) -> ObjectId {
    let mut b = [0u8; 20];
    b[0] = 0xA9; // A9 namespace
    b[1] = config as u8;
    b[2] = thread as u8;
    b[3..11].copy_from_slice(&(i as u64).to_le_bytes());
    ObjectId::from_bytes(b)
}

fn frag_oid(i: usize) -> ObjectId {
    let mut b = [0u8; 20];
    b[0] = 0xF0;
    b[3..11].copy_from_slice(&(i as u64).to_le_bytes());
    ObjectId::from_bytes(b)
}

struct Run {
    p50_us: f64,
    tail99_us: f64,
    rate_kops: f64,
}

/// Build a store, churn it into the fragmented steady state, then
/// hammer it with `threads` workers doing create/seal/release +
/// get/release + windowed delete, timing each create+get pair.
fn run_one(cfg_idx: usize, cfg: &Config, threads: usize, pairs_total: usize) -> Run {
    let fabric = Fabric::virtual_thymesisflow();
    let node = fabric.register_node();
    let store = StoreCore::new(
        &fabric,
        node,
        StoreConfig::new("hotpath", CAPACITY)
            .with_shards(cfg.shards)
            .with_allocator(cfg.allocator),
    )
    .expect("store must launch");

    // Prelude: fill with small objects, then delete every other one.
    // The survivors pin the holes open for the whole measured phase.
    for i in 0..FRAG_OBJECTS {
        let id = frag_oid(i);
        store.create(id, 1_008, 16).expect("prelude create");
        store.seal(id).expect("prelude seal");
        store.release(id).expect("prelude release");
    }
    for i in (1..FRAG_OBJECTS).step_by(2) {
        store.delete(frag_oid(i)).expect("prelude delete");
    }

    let store = Arc::new(store);
    let per_thread = pairs_total / threads;
    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let s = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let mut lat_us = Vec::with_capacity(per_thread);
            for i in 0..per_thread {
                let id = oid(cfg_idx, t, i);
                let read_back = oid(cfg_idx, t, i.saturating_sub(WINDOW / 2));
                let t0 = Instant::now();
                s.create(id, DATA_SIZE, META_SIZE).expect("create");
                s.seal(id).expect("seal");
                s.release(id).expect("release creator ref");
                if i > 0 {
                    s.get_local(read_back).expect("windowed read-back");
                    s.release(read_back).expect("release read ref");
                }
                lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                if i >= WINDOW {
                    s.delete(oid(cfg_idx, t, i - WINDOW)).expect("trim window");
                }
            }
            lat_us
        }));
    }
    let mut lat_us: Vec<f64> = Vec::with_capacity(pairs_total);
    for h in handles {
        lat_us.extend(h.join().expect("worker panicked"));
    }
    let wall = started.elapsed().as_secs_f64();
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());

    Run {
        p50_us: percentile(&lat_us, 0.50),
        tail99_us: percentile(&lat_us, 0.99),
        rate_kops: (per_thread * threads) as f64 / wall / 1e3,
    }
}

fn main() {
    let opts = HarnessOpts::parse();
    // reps scales the measured pair count; --small quarters it.
    let pairs_total = 600 * opts.reps.max(1) / if opts.small { 4 } else { 1 };
    println!(
        "A9: create+get hot path, {pairs_total} pairs per run over a region \
         pre-fragmented with {} holes; {} configs x {THREADS:?} threads",
        FRAG_OBJECTS / 2,
        CONFIGS.len()
    );

    let mut rows = Vec::new();
    let mut results: Vec<(usize, &str, usize, Run)> = Vec::new();
    for (ci, cfg) in CONFIGS.iter().enumerate() {
        for &threads in THREADS {
            let run = run_one(ci, cfg, threads, pairs_total);
            rows.push(vec![
                cfg.name.to_string(),
                threads.to_string(),
                format!("{:.1}", run.p50_us),
                format!("{:.1}", run.tail99_us),
                format!("{:.1}", run.rate_kops),
            ]);
            results.push((ci, cfg.name, threads, run));
        }
    }
    println!(
        "{}",
        render_table(
            &["config", "threads", "p50 (µs)", "p99 (µs)", "rate (kops/s)"],
            &rows
        )
    );

    // Machine-independent ratios: sharded+slab vs the single-mutex
    // first-fit baseline at the same thread count.
    let rate_of = |name: &str, threads: usize| {
        results
            .iter()
            .find(|(_, n, t, _)| *n == name && *t == threads)
            .map(|(_, _, _, r)| r.rate_kops)
            .expect("config measured")
    };
    let mut speedups = Vec::new();
    for &threads in THREADS {
        let s = rate_of("slab-16shard", threads) / rate_of("firstfit-1shard", threads);
        println!("speedup at {threads} threads (slab-16shard / firstfit-1shard): {s:.2}x");
        speedups.push((threads, s));
    }

    let mut json = String::from("{\n  \"experiment\": \"hotpath\",\n");
    json.push_str(&format!(
        "  \"pairs_per_run\": {pairs_total}, \"frag_holes\": {},\n",
        FRAG_OBJECTS / 2
    ));
    json.push_str("  \"configs\": [\n");
    for (i, (_, name, threads, run)) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"threads\": {threads}, \"p50_us\": {:.1}, \
             \"tail99_us\": {:.1}, \"rate_kops\": {:.1}}}{}\n",
            run.p50_us,
            run.tail99_us,
            run.rate_kops,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    for (threads, s) in &speedups {
        json.push_str(&format!("  \"speedup_throughput_{threads}t\": {s:.2},\n"));
    }
    json.push_str(
        "  \"note\": \"raw wall-clock keys (p50_us, tail99_us, rate_kops) are host-dependent \
         and deliberately named outside the ratchet families; only the speedup ratios above \
         are ratcheted\"\n}\n",
    );
    std::fs::write("BENCH_hotpath.json", json).expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json");

    // Acceptance floor: ≥1.5x at every multi-threaded point.
    for (threads, s) in &speedups {
        if *threads >= 4 {
            assert!(
                *s >= 1.5,
                "hot path regressed: {s:.2}x at {threads} threads (need >= 1.5x)"
            );
        }
    }
}
