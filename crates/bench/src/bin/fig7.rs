//! Figure 7 — Plasma object buffer reading performance comparison.
//!
//! For each Table I benchmark, measures the throughput of sequentially
//! reading all retrieved buffers (including access latency) for local and
//! remote clients, reporting the distribution over N repetitions as
//! box-plot statistics.
//!
//! Expected shape (paper): both paths stabilize for benchmarks 4-6 at
//! ~6.5 GiB/s local and ~5.75 GiB/s remote (≈11.5% penalty); benchmarks
//! 1-3 display more variation (5.5-7.1 GiB/s) because small objects do
//! not saturate bandwidth.
//!
//! Usage: `cargo run -p bench --bin fig7 --release [-- --small --reps N]`

use bench::{
    cluster_config, print_store_side, render_table, run_benchmark_between, HarnessOpts, Summary,
};
use disagg::Cluster;
use topo::ClusterSpec;

fn main() {
    let opts = HarnessOpts::parse();
    // Degenerate 1-rack topology = the paper's testbed (see fig6).
    let spec = ClusterSpec::paper_testbed();
    let cluster =
        Cluster::launch(cluster_config(&spec, opts.store_memory())).expect("launch cluster");
    let remote_node = spec.farthest_from(0);

    println!(
        "Figure 7: sequential buffer read throughput (GiB/s), {} reps{}",
        opts.reps,
        if opts.small { ", scaled objects" } else { "" }
    );
    let mut rows = Vec::new();
    let mut plateau = (0.0f64, 0.0f64, 0usize); // (local, remote, count) for benches 4-6
    for spec in opts.specs() {
        let r = run_benchmark_between(&cluster, spec, opts.reps, opts.seed, 0, remote_node)
            .expect("benchmark");
        let local: Vec<f64> = r.local.iter().map(|s| s.read_gibps).collect();
        let remote: Vec<f64> = r.remote.iter().map(|s| s.read_gibps).collect();
        let l = Summary::of(&local);
        let m = Summary::of(&remote);
        if spec.index >= 4 {
            plateau.0 += l.median;
            plateau.1 += m.median;
            plateau.2 += 1;
        }
        for (label, s) in [("local", &l), ("remote", &m)] {
            rows.push(vec![
                spec.index.to_string(),
                label.to_string(),
                format!("{:.2}", s.min),
                format!("{:.2}", s.p25),
                format!("{:.2}", s.median),
                format!("{:.2}", s.p75),
                format!("{:.2}", s.max),
            ]);
        }
        eprintln!("  bench {} done", spec.index);
    }
    println!(
        "{}",
        render_table(&["#", "path", "min", "p25", "median", "p75", "max"], &rows)
    );
    if plateau.2 > 0 {
        let l = plateau.0 / plateau.2 as f64;
        let m = plateau.1 / plateau.2 as f64;
        println!(
            "Plateau (benchmarks 4-6): local {:.2} GiB/s, remote {:.2} GiB/s, penalty {:.1}%",
            l,
            m,
            (l - m) / l * 100.0
        );
        println!("Paper reports:            local ~6.5 GiB/s, remote ~5.75 GiB/s, penalty ~11.5%");
    }
    print_store_side(&cluster);
}
