//! Figure 6 — Plasma object buffer retrieval performance comparison.
//!
//! For each Table I benchmark, measures the total buffer-retrieval latency
//! "from the time of the request to the reception of the last buffer" for
//! a local client (objects in its own store) and a remote client (objects
//! on the other node, resolved via store-to-store RPC), over N
//! repetitions.
//!
//! Expected shape (paper): local latency scales with the number of
//! requested objects (1.885 ms @ 1000 objects down to 0.075 ms @ 10);
//! remote latency is milliseconds, dominated by gRPC and network jitter,
//! and only weakly dependent on object count (5.049 ms @ 1000 objects,
//! 2.624 ms @ 100).
//!
//! Usage: `cargo run -p bench --bin fig6 --release [-- --small --reps N]`

use bench::{
    cluster_config, print_store_side, render_table, run_benchmark_between, HarnessOpts, Summary,
};
use disagg::Cluster;
use topo::ClusterSpec;

fn main() {
    let opts = HarnessOpts::parse();
    // The paper's testbed as the degenerate 1-rack topology: the mesh it
    // expands to is byte-identical to ClusterConfig::paper_testbed, so
    // the recorded A2 numbers are unchanged.
    let spec = ClusterSpec::paper_testbed();
    let cluster =
        Cluster::launch(cluster_config(&spec, opts.store_memory())).expect("launch cluster");
    let remote_node = spec.farthest_from(0);

    println!(
        "Figure 6: object buffer retrieval latency (ms), {} reps{}",
        opts.reps,
        if opts.small { ", scaled objects" } else { "" }
    );
    let mut rows = Vec::new();
    for spec in opts.specs() {
        let r = run_benchmark_between(&cluster, spec, opts.reps, opts.seed, 0, remote_node)
            .expect("benchmark");
        let local: Vec<_> = r.local.iter().map(|s| s.retrieval).collect();
        let remote: Vec<_> = r.remote.iter().map(|s| s.retrieval).collect();
        let l = Summary::of_durations_ms(&local);
        let m = Summary::of_durations_ms(&remote);
        rows.push(vec![
            spec.index.to_string(),
            spec.num_objects.to_string(),
            format!("{:.3}", l.median),
            format!("{:.3}", l.std),
            format!("{:.3}", m.median),
            format!("{:.3}", m.std),
            format!("{:.1}x", m.median / l.median.max(1e-9)),
        ]);
        eprintln!("  bench {} done", spec.index);
    }
    println!(
        "{}",
        render_table(
            &[
                "#",
                "objects",
                "local med (ms)",
                "local σ",
                "remote med (ms)",
                "remote σ",
                "penalty"
            ],
            &rows
        )
    );
    print_store_side(&cluster);
}
