#![allow(clippy::all)] // vendored offline stand-in

//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: the [`proptest!`] test macro, [`Strategy`] with `prop_map`,
//! [`prop_oneof!`], ranges and tuples as strategies, `any::<T>()`,
//! `collection::vec`, regex-ish string strategies, and the `prop_assert*`
//! macros. Differences from the real crate:
//!
//! * **No shrinking** — a failing case reports its inputs (via the panic
//!   message) but is not minimized.
//! * **Deterministic seeding** — each test's RNG is seeded from the test
//!   name, so runs are reproducible without a regressions file
//!   (`*.proptest-regressions` files are ignored).
//! * **Edge-biased integers** — `any::<uN>()` favors 0/1/MAX-style edge
//!   values 25% of the time to keep boundary coverage comparable.

use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

/// Error returned by `prop_assert!`-style macros; aborts the current case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Compatibility constructor mirroring `TestCaseError::Fail(reason)`.
    #[allow(non_snake_case)]
    pub fn Fail(msg: impl Into<String>) -> Self {
        Self::fail(msg)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for TestCaseError {}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        TestCaseError(s)
    }
}

impl From<&str> for TestCaseError {
    fn from(s: &str) -> Self {
        TestCaseError(s.to_string())
    }
}

/// Per-test configuration. Only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    pub use super::{ProptestConfig as Config, TestCaseError};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The RNG driving generation. Seeded from the test name (FNV-1a) so
    /// every run of a given test explores the same deterministic stream.
    pub type TestRng = SmallRng;

    pub fn rng_for(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        SmallRng::seed_from_u64(h)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a shareable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy; cheap to clone.
pub struct BoxedStrategy<V>(Arc<dyn Fn(&mut SmallRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        (self.0)(rng)
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (the `prop_oneof!` backend).
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union(self.0.clone())
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut SmallRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.gen_range(0..self.0.len());
        self.0[i].generate(rng)
    }
}

/// Values `any::<T>()` can produce.
pub trait Arbitrary: fmt::Debug + Sized {
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                // 25% edge values to keep boundary coverage.
                if rng.gen_range(0..4usize) == 0 {
                    const EDGES: &[$t] = &[0, 1, <$t>::MAX, <$t>::MAX - 1, <$t>::MAX / 2];
                    EDGES[rng.gen_range(0..EDGES.len())]
                } else {
                    rng.gen_range(0..=<$t>::MAX)
                }
            }
        }
    )*};
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SmallRng) -> $t {
                if rng.gen_range(0..4usize) == 0 {
                    const EDGES: &[$t] = &[0, 1, -1, <$t>::MIN, <$t>::MAX];
                    EDGES[rng.gen_range(0..EDGES.len())]
                } else {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);
arbitrary_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut SmallRng) -> char {
        // Mostly ASCII, occasionally wider BMP scalars.
        if rng.gen_range(0..4usize) == 0 {
            char::from_u32(rng.gen_range(0x20u32..0xD7FF)).unwrap_or('\u{FFFD}')
        } else {
            rng.gen_range(0x20u8..0x7F) as char
        }
    }
}

/// `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Pattern strings as strategies. Only the length quantifier of the
/// pattern is honored (`"...{lo,hi}"`); the generated characters are
/// printable ASCII, a subset of every class the workspace's patterns use
/// (`\PC` = any non-control character).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut SmallRng) -> String {
        let (lo, hi) = parse_len_quantifier(self).unwrap_or((0, 16));
        let len = if lo >= hi { lo } else { rng.gen_range(lo..=hi) };
        (0..len)
            .map(|_| rng.gen_range(0x20u8..0x7F) as char)
            .collect()
    }
}

fn parse_len_quantifier(pat: &str) -> Option<(usize, usize)> {
    let inner = pat.strip_suffix('}')?;
    let brace = inner.rfind('{')?;
    let body = &inner[brace + 1..];
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = body.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((lo, hi))
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            assert!(
                self.size.start < self.size.end,
                "collection::vec: empty size range"
            );
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` module alias exposed by the prelude (`prop::sample::Index`).
pub mod prop {
    pub use super::collection;
    pub use super::sample;
}

pub mod sample {
    use super::{Arbitrary, SmallRng};
    use rand::Rng;

    /// An index into a collection whose size is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `0..len`. Panics if `len == 0` (as in real proptest).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut SmallRng) -> Index {
            Index(rng.gen())
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
    pub use rand::rngs::SmallRng;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed at {}:{}: {}",
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "{} == {} failed: {:?} != {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "{} != {} failed: both {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// The test-definition macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest {} failed at case {case}/{}: {e}", stringify!($name), config.cases);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        A(u8),
        B(u16),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_tuples((a, b) in (0..10u8, 5..6usize), c in 1..100u64) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
            prop_assert!((1..100).contains(&c));
        }

        #[test]
        fn oneof_and_vec(ops in prop::collection::vec(prop_oneof![
            any::<u8>().prop_map(Op::A),
            (1..50u16).prop_map(Op::B),
        ], 1..20)) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            for op in ops {
                if let Op::B(x) = op {
                    prop_assert!((1..50).contains(&x));
                }
            }
        }

        #[test]
        fn string_pattern_len(s in "\\PC{0,8}") {
            prop_assert!(s.len() <= 8);
        }

        #[test]
        fn early_return_ok(v in any::<bool>()) {
            if v {
                return Ok(());
            }
            prop_assert!(!v);
        }

        #[test]
        fn sample_index_in_bounds(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::test_runner::rng_for("x");
        let mut b = crate::test_runner::rng_for("x");
        let s = crate::collection::vec(any::<u64>(), 1..10);
        use crate::Strategy;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
