//! The topology model: pods of racks of hosts, with tiered links.
//!
//! A [`ClusterSpec`] is pure data — small enough to paste into an issue,
//! exact enough to rebuild the same fabric forever. Node indices are
//! host-major: index `i` lives at pod `i / (racks_per_pod ×
//! hosts_per_rack)`, rack `(i / hosts_per_rack) % racks_per_pod`, host
//! `i % hosts_per_rack`. Every ordered node pair maps to one of three
//! network tiers (same rack, same pod, different pod), each with its own
//! [`TierLink`] latency/bandwidth parameters; the expansion into
//! [`netsim::LinkModel`]s is what `disagg::ClusterConfig::link_map`
//! consumes.

use netsim::{Latency, LinkModel};
use std::sync::Arc;
use std::time::Duration;

/// Locality tier of a node pair. `Local` is the degenerate `i == j`
/// "pair" (no interconnect hop at all); the other three are network
/// tiers with a [`TierLink`] each, ordered by distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tier {
    /// Same host — the op never touches the interconnect.
    Local,
    /// Same rack: one top-of-rack switch hop.
    IntraRack,
    /// Same pod, different rack: through the pod fabric.
    CrossRack,
    /// Different pod: through the spine.
    CrossPod,
}

impl Tier {
    /// All four tiers, nearest first (report row order).
    pub const ALL: [Tier; 4] = [
        Tier::Local,
        Tier::IntraRack,
        Tier::CrossRack,
        Tier::CrossPod,
    ];

    /// The three network tiers (pairs that cross the interconnect).
    pub const NETWORK: [Tier; 3] = [Tier::IntraRack, Tier::CrossRack, Tier::CrossPod];

    /// Stable label used in metric names (`cluster.get.<label>.latency_ns`)
    /// and report tables.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Local => "local",
            Tier::IntraRack => "intra_rack",
            Tier::CrossRack => "cross_rack",
            Tier::CrossPod => "cross_pod",
        }
    }
}

/// Link parameters of one tier, integer-encoded so specs serialize
/// exactly (no floats on the wire). Expands to a log-normal base delay —
/// the classic datacenter RPC shape already calibrated in
/// [`netsim::LinkModel::grpc_lan`] — plus a per-byte streaming cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierLink {
    /// Median of the log-normal base delay, microseconds.
    pub median_us: u64,
    /// σ of the underlying normal, thousandths (220 ⇒ σ = 0.22).
    /// Zero selects a constant (jitter-free) delay.
    pub sigma_milli: u32,
    /// Payload bandwidth in bytes per microsecond (1100 ≈ 10 GbE
    /// effective). Zero means no per-byte cost.
    pub bytes_per_us: u64,
}

impl TierLink {
    /// The paper's calibrated gRPC-over-LAN link (the 2-node testbed's
    /// only tier). Expands to exactly [`netsim::LinkModel::grpc_lan`].
    pub fn grpc_lan() -> TierLink {
        TierLink {
            median_us: 2300,
            sigma_milli: 220,
            bytes_per_us: 1100,
        }
    }

    /// A link with no delay at all (functional tests). Expands to
    /// exactly [`netsim::LinkModel::instant`].
    pub fn instant() -> TierLink {
        TierLink {
            median_us: 0,
            sigma_milli: 0,
            bytes_per_us: 0,
        }
    }

    /// Expand to the [`LinkModel`] the RPC layer charges per exchange.
    pub fn model(self) -> LinkModel {
        let median = Duration::from_micros(self.median_us);
        let base = if self.sigma_milli == 0 {
            Latency::Constant(median)
        } else {
            Latency::LogNormal {
                median,
                sigma: self.sigma_milli as f64 / 1000.0,
            }
        };
        LinkModel {
            base,
            secs_per_byte: if self.bytes_per_us == 0 {
                0.0
            } else {
                1.0 / (self.bytes_per_us as f64 * 1e6)
            },
        }
    }
}

/// Position of a host in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coord {
    /// Pod index.
    pub pod: usize,
    /// Rack index within the pod.
    pub rack: usize,
    /// Host index within the rack.
    pub host: usize,
}

/// A whole cluster as data: the shape (pods × racks × hosts) and the
/// three tier links, plus the seed every derived stream (link delays,
/// workload randomness) is keyed on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Number of pods.
    pub pods: usize,
    /// Racks in each pod.
    pub racks_per_pod: usize,
    /// Hosts in each rack (one store per host).
    pub hosts_per_rack: usize,
    /// Seed for all delay sampling and workload generation.
    pub seed: u64,
    /// Link of same-rack pairs.
    pub intra_rack: TierLink,
    /// Link of same-pod, different-rack pairs.
    pub cross_rack: TierLink,
    /// Link of different-pod pairs.
    pub cross_pod: TierLink,
}

impl ClusterSpec {
    /// The paper's testbed as the degenerate spec: one rack of two hosts,
    /// every tier the calibrated gRPC LAN link, the seed the 2-node
    /// harness has always used — so clusters built through this spec
    /// reproduce the recorded A2/A3 numbers exactly.
    pub fn paper_testbed() -> ClusterSpec {
        ClusterSpec {
            pods: 1,
            racks_per_pod: 1,
            hosts_per_rack: 2,
            seed: 0x7F1A,
            intra_rack: TierLink::grpc_lan(),
            cross_rack: TierLink::grpc_lan(),
            cross_pod: TierLink::grpc_lan(),
        }
    }

    /// A 2 × 2 × 2 = 8-host fabric for smoke runs and CI: the calibrated
    /// intra-rack link, with cross-rack and cross-pod tiers progressively
    /// slower and more jittery.
    pub fn small_fabric(seed: u64) -> ClusterSpec {
        ClusterSpec {
            pods: 2,
            racks_per_pod: 2,
            hosts_per_rack: 2,
            seed,
            ..ClusterSpec::paper_fabric(seed)
        }
    }

    /// The A6 reference fabric: 4 pods × 4 racks × 4 hosts = 64 stores.
    /// Intra-rack keeps the paper's calibrated gRPC link; cross-rack adds
    /// pod-fabric hops (~1.35× median, more jitter, ~6 GbE effective);
    /// cross-pod crosses the spine (~2× median, the most jitter, ~3 GbE).
    pub fn paper_fabric(seed: u64) -> ClusterSpec {
        ClusterSpec {
            pods: 4,
            racks_per_pod: 4,
            hosts_per_rack: 4,
            seed,
            intra_rack: TierLink::grpc_lan(),
            cross_rack: TierLink {
                median_us: 3100,
                sigma_milli: 300,
                bytes_per_us: 700,
            },
            cross_pod: TierLink {
                median_us: 4600,
                sigma_milli: 380,
                bytes_per_us: 400,
            },
        }
    }

    /// Total number of hosts (= stores = nodes).
    pub fn nodes(&self) -> usize {
        self.pods * self.racks_per_pod * self.hosts_per_rack
    }

    /// Total number of racks.
    pub fn racks(&self) -> usize {
        self.pods * self.racks_per_pod
    }

    /// Coordinates of node index `i` (host-major layout).
    pub fn coord(&self, i: usize) -> Coord {
        assert!(i < self.nodes(), "node index {i} out of range");
        Coord {
            pod: i / (self.racks_per_pod * self.hosts_per_rack),
            rack: (i / self.hosts_per_rack) % self.racks_per_pod,
            host: i % self.hosts_per_rack,
        }
    }

    /// Node index at `coord` (inverse of [`ClusterSpec::coord`]).
    pub fn index(&self, coord: Coord) -> usize {
        (coord.pod * self.racks_per_pod + coord.rack) * self.hosts_per_rack + coord.host
    }

    /// Global rack id of node `i` (pods flattened), used to enumerate a
    /// node's rack-mates.
    pub fn rack_of(&self, i: usize) -> usize {
        i / self.hosts_per_rack
    }

    /// All node indices in the same rack as `i` (including `i`).
    pub fn rack_members(&self, i: usize) -> std::ops::Range<usize> {
        let rack = self.rack_of(i);
        rack * self.hosts_per_rack..(rack + 1) * self.hosts_per_rack
    }

    /// All node indices in pod `pod`.
    pub fn pod_members(&self, pod: usize) -> std::ops::Range<usize> {
        let per_pod = self.racks_per_pod * self.hosts_per_rack;
        pod * per_pod..(pod + 1) * per_pod
    }

    /// Locality tier of the ordered pair `(i, j)`.
    pub fn tier(&self, i: usize, j: usize) -> Tier {
        let (a, b) = (self.coord(i), self.coord(j));
        if i == j {
            Tier::Local
        } else if a.pod == b.pod && a.rack == b.rack {
            Tier::IntraRack
        } else if a.pod == b.pod {
            Tier::CrossRack
        } else {
            Tier::CrossPod
        }
    }

    /// The [`TierLink`] of a network tier. Panics on [`Tier::Local`],
    /// which has no link.
    pub fn tier_link(&self, tier: Tier) -> TierLink {
        match tier {
            Tier::Local => panic!("local pairs have no link"),
            Tier::IntraRack => self.intra_rack,
            Tier::CrossRack => self.cross_rack,
            Tier::CrossPod => self.cross_pod,
        }
    }

    /// Expanded link model of the pair `(i, j)` (`i ≠ j`).
    pub fn link(&self, i: usize, j: usize) -> LinkModel {
        self.tier_link(self.tier(i, j)).model()
    }

    /// The per-pair link closure `disagg::ClusterConfig::link_map`
    /// consumes: node indices in, expanded [`LinkModel`] out.
    pub fn link_map(&self) -> Arc<dyn Fn(usize, usize) -> LinkModel + Send + Sync> {
        let spec = self.clone();
        Arc::new(move |i, j| spec.link(i, j))
    }

    /// Seed of the pair `(i, j)`'s delay stream.
    pub fn link_seed(&self, i: usize, j: usize) -> u64 {
        mix(self.seed ^ ((i as u64) << 32) ^ j as u64)
    }

    /// Deterministic point sample of the pair's delay stream: the delay
    /// of exchange `seq` over `(i, j)` carrying `payload_bytes`, via
    /// [`netsim::Latency::sample_at`] — a pure function of its
    /// coordinates, replayable in any order.
    pub fn delay_at(&self, i: usize, j: usize, payload_bytes: usize, seq: u64) -> Duration {
        let model = self.link(i, j);
        model.base.sample_at(self.link_seed(i, j), seq)
            + Duration::from_secs_f64(model.secs_per_byte * payload_bytes as f64)
    }

    /// The node most distant from `i` (first index at the maximum tier):
    /// what a "remote client" means on this fabric. On the degenerate
    /// paper testbed, `farthest_from(0) == 1` — the other host.
    pub fn farthest_from(&self, i: usize) -> usize {
        (0..self.nodes())
            .max_by_key(|&j| (self.tier(i, j), std::cmp::Reverse(j)))
            .expect("spec has at least one node")
    }

    /// Serialize to the stable text format (round-trips through
    /// [`ClusterSpec::parse`]).
    pub fn serialize(&self) -> String {
        let mut out = format!(
            "topo v1 pods={} racks={} hosts={} seed={}\n",
            self.pods, self.racks_per_pod, self.hosts_per_rack, self.seed
        );
        for (name, link) in [
            ("intra_rack", self.intra_rack),
            ("cross_rack", self.cross_rack),
            ("cross_pod", self.cross_pod),
        ] {
            out.push_str(&format!(
                "tier {name} median_us={} sigma_milli={} bytes_per_us={}\n",
                link.median_us, link.sigma_milli, link.bytes_per_us
            ));
        }
        out
    }

    /// Parse the text format produced by [`ClusterSpec::serialize`].
    pub fn parse(text: &str) -> Result<ClusterSpec, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty spec")?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("topo") || parts.next() != Some("v1") {
            return Err(format!("bad topo header: {header}"));
        }
        let mut spec = ClusterSpec {
            pods: 0,
            racks_per_pod: 0,
            hosts_per_rack: 0,
            seed: 0,
            intra_rack: TierLink::instant(),
            cross_rack: TierLink::instant(),
            cross_pod: TierLink::instant(),
        };
        for kv in parts {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("bad token {kv}"))?;
            let n = v.parse::<u64>().map_err(|e| format!("{k}: {e}"))?;
            match k {
                "pods" => spec.pods = n as usize,
                "racks" => spec.racks_per_pod = n as usize,
                "hosts" => spec.hosts_per_rack = n as usize,
                "seed" => spec.seed = n,
                _ => return Err(format!("unknown header field {k}")),
            }
        }
        if spec.pods == 0 || spec.racks_per_pod == 0 || spec.hosts_per_rack == 0 {
            return Err("spec needs pods, racks and hosts ≥ 1".into());
        }
        for line in lines {
            let mut parts = line.split_whitespace();
            if parts.next() != Some("tier") {
                return Err(format!("bad tier line: {line}"));
            }
            let name = parts.next().ok_or("tier line missing name")?;
            let mut link = TierLink::instant();
            for kv in parts {
                let (k, v) = kv
                    .split_once('=')
                    .ok_or_else(|| format!("bad token {kv}"))?;
                let n = v.parse::<u64>().map_err(|e| format!("{k}: {e}"))?;
                match k {
                    "median_us" => link.median_us = n,
                    "sigma_milli" => link.sigma_milli = n as u32,
                    "bytes_per_us" => link.bytes_per_us = n,
                    _ => return Err(format!("unknown tier field {k}")),
                }
            }
            match name {
                "intra_rack" => spec.intra_rack = link,
                "cross_rack" => spec.cross_rack = link,
                "cross_pod" => spec.cross_pod = link,
                _ => return Err(format!("unknown tier {name}")),
            }
        }
        Ok(spec)
    }
}

/// splitmix64 finalizer (same mixer the placement ring uses), for
/// deriving well-separated per-pair and per-event seeds.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_testbed_expands_to_the_calibrated_link() {
        let spec = ClusterSpec::paper_testbed();
        assert_eq!(spec.nodes(), 2);
        assert_eq!(spec.link(0, 1), LinkModel::grpc_lan());
        assert_eq!(spec.farthest_from(0), 1);
        assert_eq!(TierLink::instant().model(), LinkModel::instant());
    }

    #[test]
    fn coordinates_round_trip_and_classify() {
        let spec = ClusterSpec::paper_fabric(7);
        assert_eq!(spec.nodes(), 64);
        assert_eq!(spec.racks(), 16);
        for i in 0..spec.nodes() {
            assert_eq!(spec.index(spec.coord(i)), i);
        }
        // 0 and 1 share rack 0; 0 and 4 share pod 0 across racks; 0 and
        // 16 are in different pods.
        assert_eq!(spec.tier(0, 0), Tier::Local);
        assert_eq!(spec.tier(0, 1), Tier::IntraRack);
        assert_eq!(spec.tier(0, 4), Tier::CrossRack);
        assert_eq!(spec.tier(0, 16), Tier::CrossPod);
        assert_eq!(spec.tier(16, 0), Tier::CrossPod);
        assert_eq!(spec.rack_members(5), 4..8);
        assert_eq!(spec.pod_members(1), 16..32);
    }

    #[test]
    fn tier_medians_are_ordered_nearest_fastest() {
        let spec = ClusterSpec::paper_fabric(7);
        assert!(spec.intra_rack.median_us < spec.cross_rack.median_us);
        assert!(spec.cross_rack.median_us < spec.cross_pod.median_us);
        // And bandwidth narrows with distance.
        assert!(spec.intra_rack.bytes_per_us > spec.cross_pod.bytes_per_us);
    }

    #[test]
    fn delay_stream_is_a_pure_function_of_coordinates() {
        let spec = ClusterSpec::small_fabric(11);
        let forward: Vec<Duration> = (0..64).map(|s| spec.delay_at(0, 5, 128, s)).collect();
        let backward: Vec<Duration> = (0..64).rev().map(|s| spec.delay_at(0, 5, 128, s)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
        // Direction matters (independent streams per ordered pair).
        let reverse_dir: Vec<Duration> = (0..64).map(|s| spec.delay_at(5, 0, 128, s)).collect();
        assert_ne!(forward, reverse_dir);
        // A different spec seed reshuffles every stream.
        let other = ClusterSpec::small_fabric(12);
        assert_ne!(
            forward,
            (0..64)
                .map(|s| other.delay_at(0, 5, 128, s))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn serialize_parse_round_trip() {
        for spec in [
            ClusterSpec::paper_testbed(),
            ClusterSpec::small_fabric(3),
            ClusterSpec::paper_fabric(99),
        ] {
            let text = spec.serialize();
            let back = ClusterSpec::parse(&text).unwrap();
            assert_eq!(spec, back);
            assert_eq!(text, back.serialize());
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ClusterSpec::parse("").is_err());
        assert!(ClusterSpec::parse("topo v2 pods=1 racks=1 hosts=2 seed=0").is_err());
        assert!(ClusterSpec::parse("topo v1 pods=0 racks=1 hosts=2 seed=0").is_err());
        assert!(ClusterSpec::parse("topo v1 pods=1 racks=1 hosts=2 seed=0\ntier bogus").is_err());
        assert!(
            ClusterSpec::parse("topo v1 pods=1 racks=1 hosts=2 seed=0\ntier intra_rack x=1")
                .is_err()
        );
    }

    #[test]
    fn farthest_prefers_the_most_distant_tier() {
        let spec = ClusterSpec::small_fabric(1);
        // Node 0 (pod 0) is farthest from any pod-1 node; the first such
        // index is 4.
        assert_eq!(spec.tier(0, spec.farthest_from(0)), Tier::CrossPod);
        assert_eq!(spec.farthest_from(0), 4);
    }
}
