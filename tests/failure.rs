//! Failure injection: fabric link loss and degradation, memory pressure,
//! and protocol misuse must surface as errors, not corruption or hangs.

use disagg::{Cluster, ClusterConfig};
use plasma::{ObjectId, PlasmaError};
use std::time::Duration;
use tfsim::LinkState;

#[test]
fn link_down_fails_remote_reads_and_recovers() {
    let cluster = Cluster::launch(ClusterConfig::functional(2, 4 << 20)).unwrap();
    let producer = cluster.client(0).unwrap();
    let consumer = cluster.client(1).unwrap();
    let id = ObjectId::from_name("flaky");
    producer.put(id, &[9; 4096], &[]).unwrap();

    let buf = consumer.get_one(id, Duration::from_secs(5)).unwrap();
    let a = cluster.node_id(0);
    let b = cluster.node_id(1);

    // Cut the fabric link: the data plane fails...
    cluster.fabric().set_link(a, b, LinkState::Down);
    let err = buf.read_all().unwrap_err();
    assert!(matches!(err, PlasmaError::Fabric(_)), "{err:?}");

    // ...and recovers when the link comes back.
    cluster.fabric().set_link(a, b, LinkState::Up);
    assert!(buf.read_all().unwrap().iter().all(|&x| x == 9));
    consumer.release(id).unwrap();
}

#[test]
fn degraded_link_slows_but_preserves_data() {
    let cluster = Cluster::launch(ClusterConfig::functional(2, 4 << 20)).unwrap();
    let producer = cluster.client(0).unwrap();
    let consumer = cluster.client(1).unwrap();
    let id = ObjectId::from_name("slow-link");
    producer.put(id, &[3; 1 << 20], &[]).unwrap();
    let buf = consumer.get_one(id, Duration::from_secs(5)).unwrap();

    let (_, nominal) = cluster.clock().time(|| buf.read_all().unwrap());
    cluster
        .fabric()
        .set_link(cluster.node_id(0), cluster.node_id(1), LinkState::Degraded(8.0));
    let (data, degraded) = cluster.clock().time(|| buf.read_all().unwrap());
    assert!(data.iter().all(|&x| x == 3), "data intact on degraded link");
    assert!(
        degraded > nominal * 4,
        "degradation must show in modeled time: {degraded:?} vs {nominal:?}"
    );
    consumer.release(id).unwrap();
}

#[test]
fn store_oom_is_reported_not_hung() {
    let cluster = Cluster::launch(ClusterConfig::functional(1, 1 << 20)).unwrap();
    let client = cluster.client(0).unwrap();
    // Pin one big object so eviction can't help.
    let big = ObjectId::from_name("pinned-big");
    let builder = client.create(big, 800 << 10, 0).unwrap();
    builder.write(0, &[1; 1024]).unwrap();
    // Unsealed + referenced -> unevictable; the next create must fail fast.
    let err = client.create(ObjectId::from_name("too-big"), 800 << 10, 0).unwrap_err();
    match err {
        PlasmaError::OutOfMemory { requested, capacity } => {
            assert_eq!(requested, 800 << 10);
            assert_eq!(capacity, 1 << 20);
        }
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
}

#[test]
fn object_too_large_for_store_is_oom() {
    let cluster = Cluster::launch(ClusterConfig::functional(1, 1 << 20)).unwrap();
    let client = cluster.client(0).unwrap();
    let err = client
        .create(ObjectId::from_name("galaxy"), 1 << 30, 0)
        .unwrap_err();
    assert!(matches!(err, PlasmaError::OutOfMemory { .. }));
}

#[test]
fn misuse_errors_are_precise() {
    let cluster = Cluster::launch(ClusterConfig::functional(2, 1 << 20)).unwrap();
    let client = cluster.client(0).unwrap();
    let id = ObjectId::from_name("misuse");
    client.put(id, b"x", &[]).unwrap();

    // Release without holding a reference.
    assert_eq!(client.release(id).unwrap_err(), PlasmaError::NotReferenced(id));
    // Delete while a reference is held.
    let _buf = client.get_one(id, Duration::from_secs(1)).unwrap();
    assert_eq!(client.delete(id).unwrap_err(), PlasmaError::ObjectInUse(id));
    client.release(id).unwrap();
    client.delete(id).unwrap();
    // Double delete.
    assert_eq!(client.delete(id).unwrap_err(), PlasmaError::ObjectNotFound(id));
}

#[test]
fn get_with_zero_timeout_returns_immediately() {
    let cluster = Cluster::launch(ClusterConfig::functional(2, 1 << 20)).unwrap();
    let client = cluster.client(0).unwrap();
    let missing = ObjectId::from_name("zero-timeout");
    let start = std::time::Instant::now();
    let out = client.get(&[missing], Duration::ZERO).unwrap();
    assert!(out[0].is_none());
    assert!(start.elapsed() < Duration::from_secs(1));
}

#[test]
fn empty_batch_get_is_a_noop() {
    let cluster = Cluster::launch(ClusterConfig::functional(2, 1 << 20)).unwrap();
    let client = cluster.client(0).unwrap();
    let out = client.get(&[], Duration::from_secs(1)).unwrap();
    assert!(out.is_empty());
}

#[test]
fn zero_byte_objects_are_supported() {
    let cluster = Cluster::launch(ClusterConfig::functional(2, 1 << 20)).unwrap();
    let producer = cluster.client(0).unwrap();
    let consumer = cluster.client(1).unwrap();
    let id = ObjectId::from_name("empty-object");
    producer.put(id, &[], b"only-metadata").unwrap();
    let buf = consumer.get_one(id, Duration::from_secs(5)).unwrap();
    assert!(buf.is_empty());
    assert_eq!(buf.metadata().read_all().unwrap(), b"only-metadata");
    consumer.release(id).unwrap();
}
