//! Distributed object-usage tracking.
//!
//! The paper identifies "distributed object-usage sharing" as a required
//! constraint — a store must not evict objects that *remote* clients are
//! still reading — but defers the implementation to future work. This
//! module implements it: when a store answers a pinning `Lookup`, the
//! object gains a store-side reference attributed to the requesting node
//! in a [`RemoteRefs`] table; a later `Release` RPC from that node drops
//! it. Together with the store's rule that referenced objects are never
//! evicted, remote readers are safe from eviction.
//!
//! [`Reservations`] backs the id-uniqueness handshake: a store records its
//! own in-flight creates, and concurrent reservations for the same id from
//! two nodes are resolved deterministically (lowest node id wins).

use parking_lot::Mutex;
use plasma::ObjectId;
use std::collections::HashMap;

use tfsim::NodeId;

/// References this store holds on behalf of remote requesters.
#[derive(Debug, Default)]
pub struct RemoteRefs {
    map: Mutex<HashMap<(NodeId, ObjectId), u64>>,
}

impl RemoteRefs {
    /// New, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one reference held for `requester`.
    pub fn pin(&self, requester: NodeId, id: ObjectId) {
        *self.map.lock().entry((requester, id)).or_insert(0) += 1;
    }

    /// Drop one reference held for `requester`. Returns false if none was
    /// recorded (protocol misuse or duplicate release).
    pub fn unpin(&self, requester: NodeId, id: ObjectId) -> bool {
        let mut map = self.map.lock();
        match map.get_mut(&(requester, id)) {
            Some(n) if *n > 1 => {
                *n -= 1;
                true
            }
            Some(_) => {
                map.remove(&(requester, id));
                true
            }
            None => false,
        }
    }

    /// Total references currently held for remote nodes.
    pub fn total(&self) -> u64 {
        self.map.lock().values().sum()
    }

    /// References held for a specific requester.
    pub fn held_for(&self, requester: NodeId) -> u64 {
        self.map
            .lock()
            .iter()
            .filter(|((n, _), _)| *n == requester)
            .map(|(_, c)| *c)
            .sum()
    }

    /// Trim the pins held for `requester` down to the counts it reports
    /// actually ledgering (ids absent from `holds` are held zero times).
    /// Returns the `(id, excess)` pairs that were trimmed, so the caller
    /// can drop the matching object references.
    ///
    /// This heals pins orphaned by lost responses: the owner pinned
    /// while serving a lookup, but the response never reached the
    /// requester, so nothing will ever release the pin. Only sound while
    /// no lookup/release traffic from `requester` is in flight (a
    /// response in flight carries pins the requester has not ledgered
    /// yet) — reconcile at quiesce, not under load.
    pub fn reconcile(
        &self,
        requester: NodeId,
        holds: &HashMap<ObjectId, u64>,
    ) -> Vec<(ObjectId, u64)> {
        let mut map = self.map.lock();
        let mut trimmed = Vec::new();
        map.retain(|(node, id), count| {
            if *node != requester {
                return true;
            }
            let reported = holds.get(id).copied().unwrap_or(0);
            if *count > reported {
                trimmed.push((*id, *count - reported));
                *count = reported;
            }
            *count > 0
        });
        trimmed
    }
}

#[derive(Debug)]
struct Pending {
    /// Set when a lower-id node reserved the same id while our create was
    /// in flight: we yielded, and our create must fail.
    lost: bool,
}

/// Reservation table for the id-uniqueness handshake.
///
/// Only *our own* in-flight creates need tracking: a store holds its
/// pending entry until the object is actually in its table, so any
/// incoming reservation for the same id hits either the pending entry
/// (tie-break) or the existing object (reject) — there is no window in
/// which a granted-but-uncreated id can be double-created.
#[derive(Debug, Default)]
pub struct Reservations {
    /// Our own in-flight creates.
    mine: Mutex<HashMap<ObjectId, Pending>>,
}

/// Outcome of an incoming reserve request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveOutcome {
    /// The id is free here; the requester may create it.
    Granted,
    /// The id already exists or a better-ranked create is pending.
    Rejected,
}

impl Reservations {
    /// New table with no pending creates.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a local create: returns false if the id is already pending
    /// locally.
    pub fn begin_local(&self, id: ObjectId) -> bool {
        let mut mine = self.mine.lock();
        if mine.contains_key(&id) {
            return false;
        }
        mine.insert(id, Pending { lost: false });
        true
    }

    /// Finish (or cancel) a local create; returns true if the reservation
    /// was lost to a concurrent lower-id node while in flight.
    pub fn end_local(&self, id: ObjectId) -> bool {
        self.mine
            .lock()
            .remove(&id)
            .map(|p| p.lost)
            .unwrap_or(false)
    }

    /// Handle an incoming reservation from `requester` on a store running
    /// at `self_node` where `exists_locally` reflects the object table.
    pub fn on_remote_reserve(
        &self,
        self_node: NodeId,
        requester: NodeId,
        id: ObjectId,
        exists_locally: bool,
    ) -> ReserveOutcome {
        if exists_locally {
            return ReserveOutcome::Rejected;
        }
        let mut mine = self.mine.lock();
        if let Some(pending) = mine.get_mut(&id) {
            // Concurrent create race: lowest node id wins deterministically.
            return if requester.0 < self_node.0 {
                pending.lost = true;
                ReserveOutcome::Granted
            } else {
                ReserveOutcome::Rejected
            };
        }
        ReserveOutcome::Granted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u8) -> ObjectId {
        ObjectId::from_bytes([n; 20])
    }

    #[test]
    fn pin_unpin_counts() {
        let r = RemoteRefs::new();
        r.pin(NodeId(1), id(1));
        r.pin(NodeId(1), id(1));
        r.pin(NodeId(2), id(1));
        assert_eq!(r.total(), 3);
        assert_eq!(r.held_for(NodeId(1)), 2);
        assert!(r.unpin(NodeId(1), id(1)));
        assert!(r.unpin(NodeId(1), id(1)));
        assert!(!r.unpin(NodeId(1), id(1)), "no refs left for node 1");
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn reconcile_trims_to_reported_counts() {
        let r = RemoteRefs::new();
        for _ in 0..3 {
            r.pin(NodeId(1), id(1)); // requester reports 1 → trim 2
        }
        r.pin(NodeId(1), id(2)); // unreported → trim 1
        r.pin(NodeId(1), id(3)); // reported exactly → untouched
        r.pin(NodeId(2), id(1)); // other requester → untouched

        let holds = HashMap::from([(id(1), 1), (id(3), 1), (id(9), 5)]);
        let mut trimmed = r.reconcile(NodeId(1), &holds);
        trimmed.sort();
        assert_eq!(trimmed, vec![(id(1), 2), (id(2), 1)]);
        assert_eq!(r.held_for(NodeId(1)), 2);
        assert_eq!(r.held_for(NodeId(2)), 1);
        // Reporting more than held never inflates the ledger.
        assert!(r.reconcile(NodeId(1), &holds).is_empty());
        // id(9) was never pinned here; the report alone creates nothing.
        assert!(!r.unpin(NodeId(1), id(9)));
    }

    #[test]
    fn local_reservation_lifecycle() {
        let r = Reservations::new();
        assert!(r.begin_local(id(1)));
        assert!(!r.begin_local(id(1)), "double begin rejected");
        assert!(!r.end_local(id(1)), "not lost");
        assert!(r.begin_local(id(1)), "free again after end");
    }

    #[test]
    fn remote_reserve_grants_when_free() {
        let r = Reservations::new();
        assert_eq!(
            r.on_remote_reserve(NodeId(0), NodeId(1), id(1), false),
            ReserveOutcome::Granted
        );
        // Granting does not block our own later creates: uniqueness of the
        // granted id is enforced by the *requester's* store once the object
        // exists there (exists_locally on the next reserve round-trip).
        assert!(r.begin_local(id(1)));
    }

    #[test]
    fn remote_reserve_rejected_when_object_exists() {
        let r = Reservations::new();
        assert_eq!(
            r.on_remote_reserve(NodeId(0), NodeId(1), id(1), true),
            ReserveOutcome::Rejected
        );
    }

    #[test]
    fn concurrent_race_lowest_node_wins() {
        // Store on node 2 has an in-flight create; node 1 (lower) reserves.
        let r = Reservations::new();
        assert!(r.begin_local(id(1)));
        assert_eq!(
            r.on_remote_reserve(NodeId(2), NodeId(1), id(1), false),
            ReserveOutcome::Granted,
            "lower-id requester wins"
        );
        assert!(r.end_local(id(1)), "our create lost the race");

        // Symmetric case: node 3 (higher) reserves against our pending.
        assert!(r.begin_local(id(2)));
        assert_eq!(
            r.on_remote_reserve(NodeId(2), NodeId(3), id(2), false),
            ReserveOutcome::Rejected,
            "higher-id requester yields"
        );
        assert!(!r.end_local(id(2)), "our create proceeds");
    }
}
